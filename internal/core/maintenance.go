package core

import (
	"time"

	"oceanstore/internal/simnet"
)

// MaintenanceConfig tunes the background self-repair processes that
// make the infrastructure "automatically adapt to the presence or
// absence of particular servers without human intervention" (§4.3.3)
// and keep archival durability up (§4.5).
type MaintenanceConfig struct {
	// Republish re-deposits location pointers from live replicas —
	// "servers slowly repeat the publishing process to repair pointers".
	Republish time.Duration
	// MeshRepair rebuilds routing tables around failed nodes.
	MeshRepair time.Duration
	// ArchiveSweep runs the deep-archival repair pass; archives with at
	// most ArchiveThreshold live fragments are re-encoded.
	ArchiveSweep     time.Duration
	ArchiveThreshold int
	// TreeRepair re-attaches dissemination-tree members whose parents
	// died.
	TreeRepair time.Duration
}

// DefaultMaintenanceConfig runs everything on minute-scale periods.
func DefaultMaintenanceConfig() MaintenanceConfig {
	return MaintenanceConfig{
		Republish:        time.Minute,
		MeshRepair:       5 * time.Minute,
		ArchiveSweep:     5 * time.Minute,
		ArchiveThreshold: 12,
		TreeRepair:       time.Minute,
	}
}

// StartMaintenance arms the periodic self-repair processes.  The
// returned stop function cancels them.
func (p *Pool) StartMaintenance(cfg MaintenanceConfig) (stop func()) {
	var cancels []func()
	if cfg.Republish > 0 && p.Mesh != nil {
		cancels = append(cancels, p.K.Every(cfg.Republish, p.republishAll))
	}
	if cfg.MeshRepair > 0 && p.Mesh != nil {
		cancels = append(cancels, p.K.Every(cfg.MeshRepair, func() {
			p.syncMeshLiveness()
			p.Mesh.Repair()
			p.Mesh.ExpireSoftState(p.K.Now())
		}))
	}
	if cfg.ArchiveSweep > 0 {
		cancels = append(cancels, p.K.Every(cfg.ArchiveSweep, func() {
			// Failed repairs are already counted under archive/repair_failed;
			// the periodic sweep has no caller to hand the errors to.
			_, _ = p.Arch.RepairSweep(cfg.ArchiveThreshold, nil)
		}))
	}
	if cfg.TreeRepair > 0 {
		cancels = append(cancels, p.K.Every(cfg.TreeRepair, func() {
			for _, st := range p.objects {
				st.ring.EnsureLiveRoot()
				st.ring.Tree().Repair()
			}
		}))
	}
	return func() {
		for _, c := range cancels {
			c()
		}
	}
}

// syncMeshLiveness mirrors simnet node liveness into the location mesh
// (the soft-state beacons of §4.3.3, collapsed into a sweep).
func (p *Pool) syncMeshLiveness() {
	for i := 0; i < p.cfg.Nodes; i++ {
		if p.Net.Node(simnet.NodeID(i)).Down() {
			p.Mesh.RemoveNode(i)
		} else if p.Mesh.Node(i).Down {
			p.Mesh.ReviveNode(i)
		}
	}
}

// republishAll re-deposits location pointers for every object from all
// of its live holders (primaries and secondaries).
func (p *Pool) republishAll() {
	for obj, st := range p.objects {
		for _, nid := range st.ring.Tree().Members() {
			if p.Net.Node(nid).Down() || p.Mesh.Node(int(nid)).Down {
				continue
			}
			p.Mesh.Publish(int(nid), obj, p.K.Now())
		}
	}
}
