package core

import (
	"bytes"
	"testing"
	"time"

	"oceanstore/internal/obs"
	"oceanstore/internal/workload"
)

// runSoakWorld drives a small engine-over-world run to completion and
// returns the engine stats plus the metrics dump.
func runSoakWorld(t *testing.T, seed int64, ops int) (workload.EngineStats, []byte) {
	t.Helper()
	cfg := DefaultSoakConfig(48)
	cfg.Objects = 8
	cfg.Clients = 6
	cfg.MaxInFlight = 16
	w, err := NewSoakWorld(seed, cfg)
	if err != nil {
		t.Fatalf("NewSoakWorld: %v", err)
	}
	reg := obs.NewRegistry()
	w.Pool.Instrument(reg, nil)
	eng := workload.NewEngine(w.Pool.K, workload.EngineConfig{
		Clients:       cfg.Clients,
		Ops:           ops,
		Mix:           workload.Mix{WriteFrac: 0.3, CreateFrac: 0.02},
		Objects:       cfg.Objects,
		ZipfS:         1.1,
		MeanWriteSize: 128,
		ClosedLoop:    true,
		MeanThink:     200 * time.Millisecond,
		RetryBackoff:  time.Second,
	}, w)
	eng.Instrument(reg)
	w.StartChurn(30*time.Second, 10*time.Second)
	eng.Start()
	w.Pool.K.RunWhile(func() bool { return !eng.Done() })
	if !eng.Done() {
		t.Fatalf("engine did not drain: %+v", eng.Stats())
	}
	var buf bytes.Buffer
	if err := reg.WriteBench(&buf, "Soak"); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	return eng.Stats(), buf.Bytes()
}

// TestSoakWorldSmoke checks the closed loop drains with the accounting
// identities intact: every op is issued exactly once, every issued op
// resolves, and most traffic succeeds despite churn.
func TestSoakWorldSmoke(t *testing.T) {
	st, _ := runSoakWorld(t, 7, 400)
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after drain", st.InFlight)
	}
	if st.OK+st.Failed != st.Issued {
		t.Fatalf("accounting: OK %d + Failed %d != Issued %d", st.OK, st.Failed, st.Issued)
	}
	if st.Issued < 400 {
		t.Fatalf("Issued = %d, want >= 400", st.Issued)
	}
	if st.OK < st.Issued*3/4 {
		t.Fatalf("success rate too low: %d OK of %d issued", st.OK, st.Issued)
	}
	if st.Creates == 0 {
		t.Fatalf("mix with CreateFrac produced no creates")
	}
}

// TestSoakWorldDeterminism: the metrics dump is a pure function of the
// seed — byte-identical across runs.
func TestSoakWorldDeterminism(t *testing.T) {
	st1, m1 := runSoakWorld(t, 42, 300)
	st2, m2 := runSoakWorld(t, 42, 300)
	if st1 != st2 {
		t.Fatalf("stats diverged:\n%+v\n%+v", st1, st2)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics dumps diverged (%d vs %d bytes)", len(m1), len(m2))
	}
	_, m3 := runSoakWorld(t, 43, 300)
	if bytes.Equal(m1, m3) {
		t.Fatalf("different seeds produced identical metrics dumps")
	}
}

// TestSoakWorldBackpressure: with a tiny in-flight cap and no think
// time, the world sheds load and the engine recovers via retries.
func TestSoakWorldBackpressure(t *testing.T) {
	cfg := DefaultSoakConfig(16)
	cfg.Objects = 4
	cfg.Clients = 8
	cfg.MaxInFlight = 1
	w, err := NewSoakWorld(11, cfg)
	if err != nil {
		t.Fatalf("NewSoakWorld: %v", err)
	}
	eng := workload.NewEngine(w.Pool.K, workload.EngineConfig{
		Clients:      cfg.Clients,
		Ops:          200,
		Mix:          workload.Mix{WriteFrac: 1.0},
		Objects:      cfg.Objects,
		ZipfS:        1.01,
		ClosedLoop:   true,
		RetryBackoff: 500 * time.Millisecond,
	}, w)
	eng.Start()
	w.Pool.K.RunWhile(func() bool { return !eng.Done() })
	st := eng.Stats()
	if st.Shed == 0 {
		t.Fatalf("MaxInFlight=1 with 8 clients shed nothing: %+v", st)
	}
	if st.OK+st.Failed != st.Issued {
		t.Fatalf("accounting: OK %d + Failed %d != Issued %d", st.OK, st.Failed, st.Issued)
	}
	if st.OK < 150 {
		t.Fatalf("too few successes under backpressure: %+v", st)
	}
}

// TestSoakWorldGrowth: nodes added mid-run join as secondaries.
func TestSoakWorldGrowth(t *testing.T) {
	cfg := DefaultSoakConfig(16)
	cfg.Objects = 4
	cfg.Clients = 2
	w, err := NewSoakWorld(3, cfg)
	if err != nil {
		t.Fatalf("NewSoakWorld: %v", err)
	}
	before := 0
	for _, obj := range w.Objects() {
		ring, _ := w.Pool.Ring(obj)
		before += len(ring.Secondaries())
	}
	w.GrowAt(time.Second, 8)
	w.Pool.Run(2 * time.Second)
	if w.Pool.Net.Len() != 24 {
		t.Fatalf("Net.Len() = %d after growth, want 24", w.Pool.Net.Len())
	}
	after := 0
	for _, obj := range w.Objects() {
		ring, _ := w.Pool.Ring(obj)
		after += len(ring.Secondaries())
	}
	if after <= before {
		t.Fatalf("grown nodes joined no rings: %d -> %d secondaries", before, after)
	}
}
