// Package core assembles the OceanStore system (paper §2): a simulated
// pool of untrusted servers running the location mesh, the archival
// service, and per-object replica rings; plus the client API of §4.6 —
// sessions with Bayou-style guarantees, updates, callbacks — and the
// legacy facades (a Unix-like file system and a transactional
// interface).
package core

import (
	"errors"
	"fmt"
	"time"

	"oceanstore/internal/acl"
	"oceanstore/internal/archive"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/object"
	"oceanstore/internal/obs"
	"oceanstore/internal/plaxton"
	"oceanstore/internal/replica"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// PoolConfig sizes a simulated deployment.
type PoolConfig struct {
	// Nodes is the total server count.
	Nodes int
	// Domains is the number of administrative domains.
	Domains int
	// Faults is f for every object's primary tier (3f+1 members).
	Faults int
	// BlockSize is the object block granularity.
	BlockSize int
	// Ring tunes per-object replication; zero-valued fields default.
	Ring replica.Config
	// Extent scales the latency plane; BaseLatency/LatencyPerUnit set
	// the link model.
	Extent         float64
	BaseLatency    time.Duration
	LatencyPerUnit time.Duration
	DropProb       float64
	// Salts sets the location mesh's salted-root redundancy.
	Salts uint32
	// NoMesh skips building the Plaxton location mesh.  Mesh
	// construction is O(n²) in node count (every node's routing table
	// scans every other node), which caps worlds at a few hundred
	// nodes; soak deployments that address replicas directly set
	// NoMesh so a 10k-node pool builds in O(n).  Locate and Router
	// are unavailable on a meshless pool.
	NoMesh bool
	// StoreFactory, when set, selects the fragment-store backend each
	// storage node gets on first use (e.g. a blobstore volume per
	// node); nil keeps the in-memory NodeStore.
	StoreFactory func(simnet.NodeID) archive.Store
	// BatchDelivery turns on simnet's same-tick delivery batching
	// (one event-heap push per distinct delivery time).
	BatchDelivery bool
	// Shards partitions the kernel's event heap by region (domain mod
	// Shards).  Under merge execution the trajectory is identical at
	// any shard count; 0 or 1 leaves the kernel unsharded.
	Shards int
}

// DefaultPoolConfig is a 64-node, 4-domain pool with WAN-ish latency.
func DefaultPoolConfig() PoolConfig {
	ring := replica.DefaultConfig()
	ring.Archive = archive.Config{DataShards: 8, TotalFragments: 16}
	return PoolConfig{
		Nodes:          64,
		Domains:        4,
		Faults:         1,
		BlockSize:      1024,
		Ring:           ring,
		Extent:         50,
		BaseLatency:    15 * time.Millisecond,
		LatencyPerUnit: time.Millisecond,
		Salts:          2,
	}
}

// objState is the server-side state for one object.
type objState struct {
	ring *replica.Ring
	name string
}

// Pool is a simulated OceanStore deployment.
type Pool struct {
	K    *sim.Kernel
	Net  *simnet.Network
	Mesh *plaxton.Mesh
	Arch *archive.Service
	ACLs *acl.Store
	cfg  PoolConfig

	objects map[guid.GUID]*objState
	// nextPrimary rotates which servers host new objects' primary tiers.
	nextPrimary int
	// twoTier, when enabled, layers the probabilistic locator over the
	// global mesh (§4.3).
	twoTier *TwoTier
	// readSvc is the lazily started remote-read service (readpath.go).
	readSvc *readService
	// router is the lazily started asynchronous mesh router.
	router *plaxton.Router

	obsReg *obs.Registry
	obsTr  *obs.Tracer
}

// Instrument attaches an observability registry and/or tracer to the
// whole deployment: the network, the archival service, the mesh router
// (if started), and every current and future object ring.  Passing nil
// for either disables that sink.  Instrumentation is counting only —
// it draws no randomness and never alters a run's trajectory.
func (p *Pool) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	p.obsReg, p.obsTr = reg, tr
	p.Net.Instrument(reg, tr)
	p.Arch.Instrument(reg, tr)
	if p.router != nil {
		p.router.Instrument(reg, tr)
	}
	// Registry handle creation is order-insensitive and Snapshot sorts,
	// so map iteration order here cannot leak into the output.
	for _, st := range p.objects {
		st.ring.Instrument(reg, tr)
	}
}

// NewPool builds a deployment with the given seed.
func NewPool(seed int64, cfg PoolConfig) *Pool {
	if cfg.Nodes < 3*cfg.Faults+1+1 {
		panic("core: pool too small for the primary tier plus a client")
	}
	k := sim.NewKernel(seed)
	net := simnet.New(k, simnet.Config{
		BaseLatency:    cfg.BaseLatency,
		LatencyPerUnit: cfg.LatencyPerUnit,
		DropProb:       cfg.DropProb,
		BatchDelivery:  cfg.BatchDelivery,
		Shards:         cfg.Shards,
	})
	nodes := net.AddRandomNodes(cfg.Nodes, cfg.Extent, cfg.Domains)
	var mesh *plaxton.Mesh
	if !cfg.NoMesh {
		ids := make([]guid.GUID, len(nodes))
		for i, n := range nodes {
			ids[i] = n.Addr()
		}
		mesh = plaxton.New(ids, func(a, b int) float64 {
			return net.Distance(simnet.NodeID(a), simnet.NodeID(b))
		})
		if cfg.Salts > 0 {
			mesh.Salts = cfg.Salts
		}
	}
	p := &Pool{
		K:       k,
		Net:     net,
		Mesh:    mesh,
		Arch:    archive.NewService(net, nodes),
		ACLs:    acl.NewStore(),
		cfg:     cfg,
		objects: make(map[guid.GUID]*objState),
	}
	if cfg.StoreFactory != nil {
		p.Arch.SetStoreFactory(cfg.StoreFactory)
	}
	return p
}

// Config returns the pool configuration.
func (p *Pool) Config() PoolConfig { return p.cfg }

// Router returns the asynchronous mesh router: routes, publishes and
// locates ride the simulated network with per-hop timeouts, backup-link
// failover and capped exponential backoff, instead of the synchronous
// table walk Mesh performs.
func (p *Pool) Router() *plaxton.Router {
	if p.Mesh == nil {
		panic("core: pool built with NoMesh has no location mesh to route over")
	}
	if p.router == nil {
		p.router = plaxton.NewRouter(p.Mesh, p.Net, plaxton.DefaultRouterConfig())
		if p.obsReg != nil || p.obsTr != nil {
			p.router.Instrument(p.obsReg, p.obsTr)
		}
	}
	return p.router
}

// pickPrimaries rotates 3f+1 primary-tier nodes for a new object.
func (p *Pool) pickPrimaries() []simnet.NodeID {
	n := 3*p.cfg.Faults + 1
	out := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = simnet.NodeID((p.nextPrimary + i) % p.cfg.Nodes)
	}
	p.nextPrimary = (p.nextPrimary + n) % p.cfg.Nodes
	return out
}

// CreateObject provisions a new persistent object owned by owner under
// a human-readable name: a self-certifying GUID, a primary tier, an
// owner-only ACL certificate, and a location-mesh publication.  The
// initial content is encrypted under key, which never leaves the
// client.
func (p *Pool) CreateObject(owner *crypt.Signer, name string, initial []byte, key crypt.BlockKey) (guid.GUID, error) {
	obj := guid.FromOwnerAndName(owner.Public(), name)
	if _, dup := p.objects[obj]; dup {
		return guid.Zero, fmt.Errorf("core: object %q already exists", name)
	}
	v0 := object.NewObject(initial, p.cfg.BlockSize, key)
	cfg := p.cfg.Ring
	cfg.Faults = p.cfg.Faults
	primaries := p.pickPrimaries()
	ring, err := replica.NewRing(p.Net, primaries, v0, obj, p.Arch, cfg)
	if err != nil {
		return guid.Zero, err
	}
	ring.CheckWrite = p.ACLs.CheckWrite
	if p.obsReg != nil || p.obsTr != nil {
		ring.Instrument(p.obsReg, p.obsTr)
	}
	st := &objState{ring: ring, name: name}
	p.objects[obj] = st
	// Archive the initial version immediately (§4.5: archival copies of
	// idle objects) so even never-updated objects are deeply durable.
	if _, err := ring.ArchiveNow(); err != nil {
		return guid.Zero, err
	}

	// Default writer restriction: owner only (an empty ACL; the owner
	// key is implicitly authorised).
	empty := &acl.ACL{}
	p.ACLs.AddACL(empty)
	if err := p.ACLs.AddCert(acl.Certify(owner, obj, empty, 1), name); err != nil {
		return guid.Zero, err
	}
	// Publish the object's location (its primary-tier members hold it).
	for _, nid := range primaries {
		if p.Mesh != nil {
			if _, err := p.Mesh.Publish(int(nid), obj, p.K.Now()); err != nil {
				return guid.Zero, err
			}
		}
		if p.twoTier != nil {
			p.twoTier.notePlacement(nid, obj)
		}
	}
	return obj, nil
}

// SetACL lets the owner bind a new ACL to an object (re-certification;
// higher serial revokes earlier grants).
func (p *Pool) SetACL(owner *crypt.Signer, obj guid.GUID, a *acl.ACL, serial uint64) error {
	st, ok := p.objects[obj]
	if !ok {
		return errors.New("core: no such object")
	}
	p.ACLs.AddACL(a)
	return p.ACLs.AddCert(acl.Certify(owner, obj, a, serial), st.name)
}

// Ring exposes an object's replica ring.
func (p *Pool) Ring(obj guid.GUID) (*replica.Ring, bool) {
	st, ok := p.objects[obj]
	if !ok {
		return nil, false
	}
	return st.ring, true
}

// AddReplica creates a floating secondary replica of obj on node and
// publishes the new location in the mesh — the mechanics behind both
// promiscuous caching and introspective replica management (§4.7.2).
func (p *Pool) AddReplica(obj guid.GUID, node simnet.NodeID) error {
	st, ok := p.objects[obj]
	if !ok {
		return errors.New("core: no such object")
	}
	if _, err := st.ring.AddSecondary(node); err != nil {
		return err
	}
	if p.twoTier != nil {
		p.twoTier.notePlacement(node, obj)
	}
	if p.Mesh == nil {
		return nil
	}
	_, err := p.Mesh.Publish(int(node), obj, p.K.Now())
	return err
}

// RemoveReplica retires a floating replica and unpublishes it.
func (p *Pool) RemoveReplica(obj guid.GUID, node simnet.NodeID) error {
	st, ok := p.objects[obj]
	if !ok {
		return errors.New("core: no such object")
	}
	if err := st.ring.RemoveSecondary(node); err != nil {
		return err
	}
	if p.twoTier != nil {
		p.twoTier.noteRemoval(node, obj)
	}
	if p.Mesh != nil {
		p.Mesh.Unpublish(int(node), obj, p.K.Now())
	}
	return nil
}

// Locate finds the closest replica of obj from a node, via the global
// location mesh (§4.3.3).
func (p *Pool) Locate(from simnet.NodeID, obj guid.GUID) (simnet.NodeID, error) {
	if p.Mesh == nil {
		return simnet.None, errors.New("core: pool built with NoMesh cannot locate")
	}
	res, err := p.Mesh.Locate(int(from), obj, p.K.Now())
	if err != nil {
		return simnet.None, err
	}
	return simnet.NodeID(res.Holder), nil
}

// Run advances the simulated world.
func (p *Pool) Run(d time.Duration) { p.K.RunFor(d) }
