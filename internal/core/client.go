package core

import (
	"errors"
	"fmt"
	"time"

	"oceanstore/internal/crypt"
	"oceanstore/internal/epidemic"
	"oceanstore/internal/guid"
	"oceanstore/internal/naming"
	"oceanstore/internal/object"
	"oceanstore/internal/replica"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
)

// Client is a trusted endpoint: the only place cleartext and keys exist
// (paper §1.2).  A client is attached to one pool node and carries a
// signing key, a key ring of object read keys, and a per-client update
// sequence.
type Client struct {
	pool   *Pool
	Node   simnet.NodeID
	Signer *crypt.Signer
	Keys   *crypt.KeyRing
	seq    uint64
	// Spread is how many random secondaries receive tentative copies of
	// each update (Fig 5a).
	Spread int
}

// NewClient attaches a client at the given node.
func (p *Pool) NewClient(node simnet.NodeID, signer *crypt.Signer) *Client {
	return &Client{pool: p, Node: node, Signer: signer, Keys: crypt.NewKeyRing(), Spread: 2}
}

// Create provisions an object owned by this client, generating and
// retaining its read key.
func (c *Client) Create(name string, initial []byte) (guid.GUID, error) {
	key := crypt.NewBlockKey(c.pool.K.Rand())
	obj, err := c.pool.CreateObject(c.Signer, name, initial, key)
	if err != nil {
		return guid.Zero, err
	}
	c.Keys.Grant(obj, key)
	return obj, nil
}

// GrantRead shares an object's read key with another client — reader
// restriction by key distribution (§4.2).
func (c *Client) GrantRead(obj guid.GUID, to *Client) error {
	key, ok := c.Keys.Key(obj)
	if !ok {
		return errors.New("core: no read key held")
	}
	to.Keys.Grant(obj, key)
	return nil
}

// Guarantees are Bayou's session guarantees (§2, [13]): they dictate
// the level of consistency a session's reads and writes observe.
type Guarantees uint8

// The four Bayou session guarantees plus the strong-read flag.
const (
	// ReadYourWrites: reads reflect this session's earlier writes.
	ReadYourWrites Guarantees = 1 << iota
	// MonotonicReads: successive reads never move backwards.
	MonotonicReads
	// WritesFollowReads: writes are ordered after the writes whose
	// effects this session has read.
	WritesFollowReads
	// MonotonicWrites: this session's writes apply in issue order; the
	// session releases a write to the primary tier only after its
	// predecessor on the same object has committed or aborted.
	MonotonicWrites
	// ReadCommitted: read only primary-committed data (ACID-style);
	// without it reads may observe tentative data for lower latency.
	ReadCommitted
)

// ACID is the strongest session: all guarantees plus committed reads.
const ACID = ReadYourWrites | MonotonicReads | WritesFollowReads | MonotonicWrites | ReadCommitted

// Session is a sequence of reads and writes related through its
// guarantees (§4.6).
type Session struct {
	c      *Client
	g      Guarantees
	readVV map[guid.GUID]map[guid.GUID]uint64 // per object: observed version vector
	// pending tracks this session's unresolved writes per object for
	// RYW; resolved writes collapse into needCommitted so a long
	// session's read check stays O(in-flight), not O(all writes ever).
	pending map[guid.GUID]map[update.UpdateID]bool
	// needCommitted is the committed-log length a replica must have
	// reached to contain every one of this session's resolved writes.
	// Sound because committed logs are prefixes of one final order: any
	// replica at length ≥ n holds the same prefix the primary had when
	// the session's write resolved at position ≤ n.
	needCommitted map[guid.GUID]int
	// onCommit/onAbort are the callback registry of §4.6.
	onCommit []func(obj guid.GUID, id update.UpdateID)
	onAbort  []func(obj guid.GUID, id update.UpdateID)
	// inflight/queued implement MonotonicWrites: one outstanding write
	// per object, the rest released in issue order.
	inflight map[guid.GUID]bool
	queued   map[guid.GUID][]*update.Update
	// UpdateTimeout, when non-zero, bounds how long a submitted write may
	// stay unresolved in virtual time.  At the deadline the session gives
	// up: abort callbacks fire, the byz client stops retransmitting, and
	// the next queued write (MonotonicWrites) is released.  Zero keeps
	// the protocol default of retransmitting until partitions heal.
	UpdateTimeout time.Duration
}

// NewSession opens a session with the given guarantees.
func (c *Client) NewSession(g Guarantees) *Session {
	return &Session{
		c:             c,
		g:             g,
		readVV:        make(map[guid.GUID]map[guid.GUID]uint64),
		pending:       make(map[guid.GUID]map[update.UpdateID]bool),
		needCommitted: make(map[guid.GUID]int),
		inflight:      make(map[guid.GUID]bool),
		queued:        make(map[guid.GUID][]*update.Update),
	}
}

// OnCommit registers a callback fired when one of this session's
// updates commits.
func (s *Session) OnCommit(cb func(obj guid.GUID, id update.UpdateID)) {
	s.onCommit = append(s.onCommit, cb)
}

// OnAbort registers a callback fired when one of this session's updates
// aborts (its guards all failed at commit time).
func (s *Session) OnAbort(cb func(obj guid.GUID, id update.UpdateID)) {
	s.onAbort = append(s.onAbort, cb)
}

// pickReplica chooses the replica a read is served from: the closest
// one (by modeled latency) whose state satisfies the session's
// guarantees, falling back to the primary tier, which always does.
func (s *Session) pickReplica(obj guid.GUID) (*epidemic.Replica, error) {
	ring, ok := s.c.pool.Ring(obj)
	if !ok {
		return nil, fmt.Errorf("core: unknown object %s", obj.Short())
	}
	if s.g&ReadCommitted != 0 {
		return ring.PrimaryState(), nil
	}
	var best *replica.Secondary
	for _, sec := range ring.Secondaries() {
		if sec.Stale || s.c.pool.Net.Node(sec.Node).Down() {
			continue
		}
		if !s.acceptable(obj, sec.Rep) {
			continue
		}
		if best == nil || s.c.pool.Net.Latency(s.c.Node, sec.Node) < s.c.pool.Net.Latency(s.c.Node, best.Node) {
			best = sec
		}
	}
	if best != nil {
		best.Reads++
		return best.Rep, nil
	}
	return ring.PrimaryState(), nil
}

// acceptable checks a replica against RYW and MonotonicReads.
func (s *Session) acceptable(obj guid.GUID, r *epidemic.Replica) bool {
	if s.g&ReadYourWrites != 0 {
		// Resolved writes: one committed-prefix length comparison.
		if r.CommittedLen() < s.needCommitted[obj] {
			return false
		}
		// In-flight writes: the replica must have at least a tentative
		// copy of each (pure AND over the set — map order cannot leak).
		for id := range s.pending[obj] {
			if !r.Seen(id) {
				return false
			}
		}
	}
	if s.g&MonotonicReads != 0 {
		if !r.Dominates(s.readVV[obj]) {
			return false
		}
	}
	return true
}

// Read returns the object's logical contents as seen through the
// session's guarantees.  The client must hold the read key.
func (s *Session) Read(obj guid.GUID) ([]byte, error) {
	if _, ok := s.c.Keys.Cipher(obj); !ok {
		return nil, errors.New("core: read permission denied (no key)")
	}
	rep, err := s.pickReplica(obj)
	if err != nil {
		return nil, err
	}
	return s.ReadReplica(obj, rep)
}

// ReadReplica reads obj from a replica the caller has already chosen —
// the soak world's modeled read path picks servers queue-aware instead
// of purely by distance, then completes the read here.  The caller is
// responsible for having checked the replica against the session's
// guarantees at selection time (Read does so via pickReplica).
func (s *Session) ReadReplica(obj guid.GUID, rep *epidemic.Replica) ([]byte, error) {
	bc, ok := s.c.Keys.Cipher(obj)
	if !ok {
		return nil, errors.New("core: read permission denied (no key)")
	}
	var v *object.Version
	if s.g&ReadCommitted != 0 {
		v = rep.CommittedState()
	} else {
		v = rep.TentativeState(s.c.pool.K.Now())
	}
	data, err := object.ViewWith(v, bc).Read()
	if err != nil {
		return nil, err
	}
	// Advance the session's observed vector (MonotonicReads floor).
	// The vector copy is paid only when the guarantee consumes it — at
	// soak rates an unconditional copy per read dominated the path.
	if s.g&MonotonicReads != 0 {
		s.readVV[obj] = rep.VersionVector()
	}
	return data, nil
}

// ReadVersion exposes the version a read would see — used by facades
// and by clients constructing compare-version guards.
func (s *Session) ReadVersion(obj guid.GUID) (*object.Version, error) {
	if _, ok := s.c.Keys.Key(obj); !ok {
		return nil, errors.New("core: read permission denied (no key)")
	}
	rep, err := s.pickReplica(obj)
	if err != nil {
		return nil, err
	}
	if s.g&ReadCommitted != 0 {
		return rep.CommittedState(), nil
	}
	return rep.TentativeState(s.c.pool.K.Now()), nil
}

// Editor returns a client-side editor over the session's current view
// of the object, for composing update actions.
func (s *Session) Editor(obj guid.GUID) (*object.Editor, *object.Version, error) {
	bc, ok := s.c.Keys.Cipher(obj)
	if !ok {
		return nil, nil, errors.New("core: read permission denied (no key)")
	}
	v, err := s.ReadVersion(obj)
	if err != nil {
		return nil, nil, err
	}
	ed, err := object.EditorWith(v, bc)
	if err != nil {
		return nil, nil, err
	}
	return ed.WithSalt(s.c.Signer.GUID().Uint64()), v, nil
}

// Submit signs and submits a fully formed update; callbacks fire on the
// primary tier's decision.  Guards are the caller's (see Append for the
// common case, or the tx facade for ACID).  Under MonotonicWrites a
// write waits until the session's previous write to the same object
// resolves, so writes apply in issue order even across retransmissions
// and view changes.
func (s *Session) Submit(u *update.Update) update.UpdateID {
	c := s.c
	c.seq++
	u.ClientID = c.Signer.GUID()
	u.Seq = c.seq
	u.Timestamp = c.pool.K.Now()
	u.Sign(c.Signer)
	id := u.ID()
	if s.pending[u.Object] == nil {
		s.pending[u.Object] = make(map[update.UpdateID]bool)
	}
	s.pending[u.Object][id] = true

	if s.g&MonotonicWrites != 0 && s.inflight[u.Object] {
		s.queued[u.Object] = append(s.queued[u.Object], u)
		return id
	}
	s.send(u)
	return id
}

// send releases an update to the ring and arms the completion chain.
func (s *Session) send(u *update.Update) {
	c := s.c
	ring, ok := c.pool.Ring(u.Object)
	if !ok {
		return
	}
	id := u.ID()
	obj := u.Object
	s.inflight[obj] = true
	resolved := false
	finish := func(committed bool) {
		if resolved {
			return
		}
		resolved = true
		delete(s.pending[obj], id)
		if committed {
			for _, cb := range s.onCommit {
				cb(obj, id)
			}
		} else {
			for _, cb := range s.onAbort {
				cb(obj, id)
			}
		}
		// Release the next queued write for this object, if any.
		s.inflight[obj] = false
		if q := s.queued[obj]; len(q) > 0 {
			next := q[0]
			s.queued[obj] = q[1:]
			s.send(next)
		}
	}
	ring.AwaitCommit(id, func(out update.Outcome) {
		// The update is now serialised at the primary: any replica whose
		// committed log reaches the primary's current length holds it,
		// so the session's RYW check collapses to a prefix comparison.
		if s.g&ReadYourWrites != 0 {
			if n := ring.PrimaryState().CommittedLen(); n > s.needCommitted[obj] {
				s.needCommitted[obj] = n
			}
		}
		finish(out.Committed)
	})
	if s.UpdateTimeout > 0 {
		// Virtual-time write timeout: give up, stop the retransmission
		// loop, and unblock the MonotonicWrites queue.  Without it a
		// write stalled behind a partition retransmits until the heal —
		// correct for eventual delivery, wrong for a client that needs an
		// answer.
		c.pool.K.After(s.UpdateTimeout, func() {
			if resolved {
				return
			}
			ring.Cancel(c.Node, u)
			finish(false)
		})
	}
	ring.Submit(c.Node, u, c.Spread, nil)
}

// Append is the common write: append payload to the object,
// unconditionally.
func (s *Session) Append(obj guid.GUID, payload []byte) (update.UpdateID, error) {
	ed, _, err := s.Editor(obj)
	if err != nil {
		return update.UpdateID{}, err
	}
	u := update.NewUnconditional(obj, update.BlockOps(ed.Append(payload)))
	return s.Submit(u), nil
}

// Replace overwrites the logical block at index idx.
func (s *Session) Replace(obj guid.GUID, idx int, payload []byte) (update.UpdateID, error) {
	ed, _, err := s.Editor(obj)
	if err != nil {
		return update.UpdateID{}, err
	}
	op, err := ed.Replace(idx, payload)
	if err != nil {
		return update.UpdateID{}, err
	}
	u := update.NewUnconditional(obj, update.BlockOps(op))
	return s.Submit(u), nil
}

// Watch registers a callback fired whenever ANY client's update to obj
// commits at the primary tier — the §4.6 callback feature for
// "relevant events" beyond the session's own writes (e.g. a mail
// reader refreshing when new mail lands).
func (s *Session) Watch(obj guid.GUID, cb func(id update.UpdateID)) error {
	ring, ok := s.c.pool.Ring(obj)
	if !ok {
		return fmt.Errorf("core: unknown object %s", obj.Short())
	}
	ring.OnCommit(func(u *update.Update, out update.Outcome) {
		if out.Committed {
			cb(u.ID())
		}
	})
	return nil
}

// SetSearchIndex builds an encrypted word index for the object from
// the given word list and installs it via an update (§4.4.2).  The
// index cells are opaque to servers; only trapdoors issued by key
// holders can test them.
func (s *Session) SetSearchIndex(obj guid.GUID, words []string) (update.UpdateID, error) {
	key, ok := s.c.Keys.Key(obj)
	if !ok {
		return update.UpdateID{}, errors.New("core: no key for object")
	}
	idx := crypt.NewSearchKey(key).BuildIndex(words)
	u := update.NewUnconditional(obj, []update.Action{{Kind: update.ActSetIndex, Index: idx}})
	return s.Submit(u), nil
}

// Search evaluates the encrypted-search predicate against the replica
// a read would use: the client issues a trapdoor for the word and the
// (untrusted, keyless) server-side index scan reports whether it
// occurs.  The server learns only the boolean result (§4.4.2).
func (s *Session) Search(obj guid.GUID, word string) (bool, error) {
	key, ok := s.c.Keys.Key(obj)
	if !ok {
		return false, errors.New("core: no key for object")
	}
	v, err := s.ReadVersion(obj)
	if err != nil {
		return false, err
	}
	if v.Index == nil {
		return false, nil
	}
	td := crypt.NewSearchKey(key).Trapdoor(word)
	return len(v.Index.Search(td)) > 0, nil
}

// ReadAt reads a specific archived version of an object, resolving a
// version-qualified reference (§4.5 "permanent hyper-link"): by version
// number or by version GUID.  Retired versions are gone from the
// active replica (their archival fragments persist; see
// archive.Service).
func (s *Session) ReadAt(obj guid.GUID, ref naming.Ref) ([]byte, error) {
	bc, ok := s.c.Keys.Cipher(obj)
	if !ok {
		return nil, errors.New("core: read permission denied (no key)")
	}
	ring, ok := s.c.pool.Ring(obj)
	if !ok {
		return nil, fmt.Errorf("core: unknown object %s", obj.Short())
	}
	if !ref.HasVersion {
		return s.Read(obj)
	}
	var v *object.Version
	if ref.ByGUID {
		v, ok = ring.History().ByGUID(ref.VersionGUID)
	} else {
		v, ok = ring.History().ByNum(ref.VersionNum)
	}
	if !ok {
		return nil, errors.New("core: version not retained (retired or never existed)")
	}
	return object.ViewWith(v, bc).Read()
}

// ResolveAndRead resolves a full version-qualified path ("root:/a/b@v2")
// through the given resolver and reads the referenced data.
func (s *Session) ResolveAndRead(r *naming.Resolver, path string) ([]byte, error) {
	ref, err := r.Resolve(path)
	if err != nil {
		return nil, err
	}
	return s.ReadAt(ref.Object, ref)
}

// Resolver builds a naming resolver whose directory fetches read
// through this session.
func (s *Session) Resolver() *naming.Resolver {
	return naming.NewResolver(func(dir guid.GUID) (*naming.Directory, error) {
		data, err := s.Read(dir)
		if err != nil {
			return nil, err
		}
		return naming.DecodeDirectory(data)
	})
}
