package core

import (
	"errors"
	"fmt"
	"time"

	"oceanstore/internal/guid"
	"oceanstore/internal/object"
	"oceanstore/internal/simnet"
)

// This file is the networked read path.  Session.Read serves from local
// replica state instantly — fine for consistency experiments, wrong for
// fault ones: a read should ride the same lossy network as everything
// else.  RemoteRead sends a request message to a replica server and
// waits for the version to come back, retrying alternate replicas with
// capped exponential backoff under a virtual-time deadline, so a read
// under churn either completes (usually via a retry, visible in
// simnet.Stats) or fails by its deadline — it can never hang the clock.

// Wire kinds (simnet accounting tags).
const (
	KindReadReq = "core-read-req"
	KindReadRep = "core-read-rep"
)

// ErrReadTimeout is returned when a remote read misses its deadline.
var ErrReadTimeout = errors.New("core: read deadline exceeded")

type readReq struct {
	Object    guid.GUID
	Committed bool
	Reply     simnet.NodeID
	Rid       uint64
}

type readRep struct {
	Rid     uint64
	Version *object.Version
	// VV is the serving replica's version vector, for the session's
	// MonotonicReads floor.
	VV map[guid.GUID]uint64
}

type readState struct {
	done bool
	cb   func(readRep, error)
}

// readService is the pool-wide server side of remote reads plus the
// client-side retry state.
type readService struct {
	p        *Pool
	nextRid  uint64
	inflight map[uint64]*readState
	hooked   map[simnet.NodeID]bool
}

func (p *Pool) reads() *readService {
	if p.readSvc == nil {
		p.readSvc = &readService{p: p, inflight: make(map[uint64]*readState), hooked: make(map[simnet.NodeID]bool)}
	}
	return p.readSvc
}

func (rs *readService) hook(id simnet.NodeID) {
	if rs.hooked[id] {
		return
	}
	rs.hooked[id] = true
	rs.p.Net.Node(id).Handle(func(m simnet.Message) { rs.handle(id, m) })
}

func (rs *readService) handle(id simnet.NodeID, m simnet.Message) {
	switch q := m.Payload.(type) {
	case readReq:
		ring, ok := rs.p.Ring(q.Object)
		if !ok {
			return
		}
		// Serve from the state this server actually holds: its secondary
		// replica if it is one, the shared primary state if it is a
		// primary-tier member; silence otherwise (the client will retry
		// elsewhere).
		var v *object.Version
		var vv map[guid.GUID]uint64
		if sec, ok := ring.Secondary(id); ok && !sec.Stale {
			if q.Committed {
				v = sec.Rep.CommittedState()
			} else {
				v = sec.Rep.TentativeState(rs.p.K.Now())
			}
			vv = sec.Rep.VersionVector()
			sec.Reads++
		} else if isPrimary(ring.PrimaryNodes(), id) {
			if q.Committed {
				v = ring.PrimaryState().CommittedState()
			} else {
				v = ring.PrimaryState().TentativeState(rs.p.K.Now())
			}
			vv = ring.PrimaryState().VersionVector()
		}
		if v == nil {
			return
		}
		rs.p.Net.Send(id, q.Reply, KindReadRep, readRep{Rid: q.Rid, Version: v, VV: vv}, v.BytesStored()+64)
	case readRep:
		st, ok := rs.inflight[q.Rid]
		if !ok || st.done {
			return
		}
		st.done = true
		delete(rs.inflight, q.Rid)
		st.cb(q, nil)
	}
}

func isPrimary(primaries []simnet.NodeID, id simnet.NodeID) bool {
	for _, p := range primaries {
		if p == id {
			return true
		}
	}
	return false
}

// readCandidates orders the servers a session's remote read should try:
// acceptable live secondaries by ascending latency (floating replicas
// are the latency story of §4.6), then the primary tier, which always
// satisfies every guarantee.
func (s *Session) readCandidates(obj guid.GUID) ([]simnet.NodeID, error) {
	ring, ok := s.c.pool.Ring(obj)
	if !ok {
		return nil, fmt.Errorf("core: unknown object %s", obj.Short())
	}
	var out []simnet.NodeID
	if s.g&ReadCommitted == 0 {
		for _, sec := range ring.Secondaries() {
			if sec.Stale || s.c.pool.Net.Node(sec.Node).Down() {
				continue
			}
			if !s.acceptable(obj, sec.Rep) {
				continue
			}
			out = append(out, sec.Node)
		}
		net := s.c.pool.Net
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if net.Latency(s.c.Node, out[j]) < net.Latency(s.c.Node, out[i]) {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
	}
	for _, nid := range ring.PrimaryNodes() {
		if !s.c.pool.Net.Node(nid).Down() {
			out = append(out, nid)
		}
	}
	return out, nil
}

// RemoteRead reads obj over the network: the request goes to the best
// replica server, falls over to alternates with capped exponential
// backoff when replies do not arrive, and gives up at the deadline.
// cb fires exactly once with the decrypted data or an error.
func (s *Session) RemoteRead(obj guid.GUID, deadline time.Duration, cb func([]byte, error)) {
	bc, ok := s.c.Keys.Cipher(obj)
	if !ok {
		cb(nil, errors.New("core: read permission denied (no key)"))
		return
	}
	rs := s.c.pool.reads()
	rs.hook(s.c.Node)
	rid := rs.nextRid
	rs.nextRid++
	st := &readState{}
	rs.inflight[rid] = st
	st.cb = func(rep readRep, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		data, derr := object.ViewWith(rep.Version, bc).Read()
		if derr != nil {
			cb(nil, derr)
			return
		}
		// Advance the session's observed vector (MonotonicReads floor),
		// as a local read would.
		s.readVV[obj] = rep.VV
		cb(data, nil)
	}

	net := s.c.pool.Net
	k := s.c.pool.K
	committed := s.g&ReadCommitted != 0
	const firstTimeout = 250 * time.Millisecond
	const timeoutCap = 4 * time.Second
	attempt := 0
	var try func()
	try = func() {
		if st.done {
			return
		}
		// Recompute candidates each attempt: churn changes who is up and
		// which secondaries are acceptable.
		cands, err := s.readCandidates(obj)
		if err != nil {
			st.done = true
			delete(rs.inflight, rid)
			cb(nil, err)
			return
		}
		if len(cands) > 0 {
			if attempt > 0 {
				net.NoteRetry(KindReadReq)
			}
			target := cands[attempt%len(cands)]
			rs.hook(target)
			net.Send(s.c.Node, target, KindReadReq,
				readReq{Object: obj, Committed: committed, Reply: s.c.Node, Rid: rid}, 64)
		}
		timeout := firstTimeout << uint(attempt)
		if timeout > timeoutCap || timeout <= 0 {
			timeout = timeoutCap
		}
		attempt++
		k.After(timeout, try)
	}
	try()
	k.After(deadline, func() {
		if st.done {
			return
		}
		st.done = true
		delete(rs.inflight, rid)
		cb(nil, ErrReadTimeout)
	})
}
