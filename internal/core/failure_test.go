package core

import (
	"testing"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/byz"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/object"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
)

func TestPartitionBlocksCommitHealResumes(t *testing.T) {
	p := smallPool(30)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("part", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(ACID)

	// Partition 3 of the 4 primaries away from everyone: no 2f+1 quorum
	// can form on the client's side of the cut.
	for _, n := range []simnet.NodeID{1, 2, 3} {
		p.Net.SetPartition(n, 1)
	}
	committed := false
	sess.OnCommit(func(guid.GUID, update.UpdateID) { committed = true })
	if _, err := sess.Append(obj, []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.Run(time.Minute)
	if committed {
		t.Fatal("committed across a partition that prevents quorum")
	}
	got, _ := sess.Read(obj)
	if string(got) != "" {
		t.Fatalf("partial state visible: %q", got)
	}

	// Heal: client retransmission re-sends the request and the tier
	// commits.
	p.Net.ClearPartitions()
	p.Run(2 * time.Minute)
	if !committed {
		t.Fatal("healed partition did not recover liveness")
	}
	got, _ = sess.Read(obj)
	if string(got) != "x" {
		t.Fatalf("after heal: %q", got)
	}
}

func TestMonotonicWritesChainInOrder(t *testing.T) {
	p := smallPool(31)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("mw", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(MonotonicWrites | ReadCommitted)
	// Issue three writes back-to-back without advancing time: only the
	// first may be in flight; the rest are queued client-side.
	for _, s := range []string{"a", "b", "c"} {
		if _, err := sess.Append(obj, []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	ring, _ := p.Ring(obj)
	if got := ring.PrimaryState().Log.Len(); got != 0 {
		t.Fatalf("log already has %d entries before any time passed", got)
	}
	p.Run(2 * time.Minute)
	got, _ := sess.Read(obj)
	if string(got) != "abc" {
		t.Fatalf("MonotonicWrites order: %q, want abc", got)
	}
	// All three committed; nothing left queued.
	if n := len(ring.PrimaryState().Log.Commits()); n != 3 {
		t.Fatalf("commits = %d", n)
	}
}

func TestMonotonicWritesReleasesAfterAbort(t *testing.T) {
	p := smallPool(32)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("mwa", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(MonotonicWrites | ReadCommitted)
	// First write is doomed (stale guard); second must still go through
	// once the first aborts.
	ed, _, err := sess.Editor(obj)
	if err != nil {
		t.Fatal(err)
	}
	doomed := update.NewVersionGuarded(obj, 999, update.BlockOps(ed.Append([]byte("x"))))
	sess.Submit(doomed)
	if _, err := sess.Append(obj, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	p.Run(2 * time.Minute)
	got, _ := sess.Read(obj)
	if string(got) != "ok" {
		t.Fatalf("queued write after abort: %q", got)
	}
}

func TestSecondaryChurnDuringUpdates(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Nodes = 32
	cfg.BlockSize = 64
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	cfg.Ring.GossipInterval = 2 * time.Second
	p := NewPool(33, cfg)
	alice := p.NewClient(30, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("churn", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 16; i++ {
		if err := p.AddReplica(obj, simnet.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	sess := alice.NewSession(ACID)
	ring, _ := p.Ring(obj)

	// Interleave updates with secondary crashes and tree repair.
	for i := 0; i < 4; i++ {
		if _, err := sess.Append(obj, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		p.Run(20 * time.Second)
		// Crash one secondary each round; repair the tree.
		victim := simnet.NodeID(4 + i)
		p.Net.Node(victim).SetDown(true)
		ring.Tree().Repair()
		p.Run(20 * time.Second)
	}
	want := "abcd"
	if got, _ := sess.Read(obj); string(got) != want {
		t.Fatalf("primary state %q", got)
	}
	// Every surviving secondary converged despite churn (gossip plus the
	// repaired tree).
	p.Run(2 * time.Minute)
	for _, sec := range ring.Secondaries() {
		if p.Net.Node(sec.Node).Down() {
			continue
		}
		key, _ := alice.Keys.Key(obj)
		v := sec.Rep.CommittedState()
		data, err := readPlain(v, key)
		if err != nil || string(data) != want {
			t.Fatalf("secondary %d state %q err %v", sec.Node, data, err)
		}
	}
}

func TestByzantineSecondaryCannotCorruptCommit(t *testing.T) {
	// A lying primary-tier replica plus an honest majority: the object
	// state at honest replicas matches what the client wrote.
	p := smallPool(34)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("lying", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := p.Ring(obj)
	ring.Group().SetFault(2, byz.Lying)
	sess := alice.NewSession(ACID)
	if _, err := sess.Append(obj, []byte("truth")); err != nil {
		t.Fatal(err)
	}
	p.Run(time.Minute)
	got, _ := sess.Read(obj)
	if string(got) != "truth" {
		t.Fatalf("state with lying replica: %q", got)
	}
}

func TestDropLossyPoolStillCommits(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Nodes = 24
	cfg.BlockSize = 64
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	cfg.DropProb = 0.05 // 5% message loss everywhere
	p := NewPool(35, cfg)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("lossy", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(ACID)
	committed := 0
	sess.OnCommit(func(guid.GUID, update.UpdateID) { committed++ })
	for i := 0; i < 3; i++ {
		if _, err := sess.Append(obj, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
		p.Run(2 * time.Minute) // retransmissions recover lost messages
	}
	if committed != 3 {
		t.Fatalf("committed %d/3 under 5%% loss", committed)
	}
	got, _ := sess.Read(obj)
	if string(got) != "abc" {
		t.Fatalf("state %q", got)
	}
}

// readPlain decrypts a version directly (test helper).
func readPlain(v *object.Version, key crypt.BlockKey) ([]byte, error) {
	return object.NewView(v, key).Read()
}
