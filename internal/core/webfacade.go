package core

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"oceanstore/internal/naming"
)

// Gateway is the read-only World Wide Web facade of §4.6/§5: a proxy
// that serves OceanStore objects over HTTP so legacy browsers can read
// them.  GET requests map URL paths onto a file-system facade;
// directories render as HTML listings; a "v" query parameter selects
// an archived version, making version-qualified permanent hyperlinks
// clickable.  All methods other than GET and HEAD are rejected — the
// gateway is strictly read-only.
type Gateway struct {
	fs *FS
}

// NewGateway wraps a file system facade.
func NewGateway(fs *FS) *Gateway { return &Gateway{fs: fs} }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "oceanstore gateway is read-only", http.StatusMethodNotAllowed)
		return
	}
	path := r.URL.Path
	if path == "" {
		path = "/"
	}
	// Directory listing?
	if strings.HasSuffix(path, "/") {
		g.serveDir(w, r, path)
		return
	}
	g.serveFile(w, r, path)
}

func (g *Gateway) serveDir(w http.ResponseWriter, r *http.Request, path string) {
	names, err := g.fs.ReadDir(cleanDirPath(path))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><body><h1>Index of %s</h1><ul>", path)
	for _, n := range names {
		fmt.Fprintf(w, `<li><a href="%s%s">%s</a></li>`, path, n, n)
	}
	fmt.Fprint(w, "</ul></body></html>")
}

func cleanDirPath(p string) string {
	p = strings.TrimSuffix(p, "/")
	if p == "" {
		p = "/"
	}
	return p
}

func (g *Gateway) serveFile(w http.ResponseWriter, r *http.Request, path string) {
	// Version-qualified read: ?v=N pins an archived version.
	if vq := r.URL.Query().Get("v"); vq != "" {
		num, err := strconv.ParseUint(vq, 10, 64)
		if err != nil {
			http.Error(w, "bad version", http.StatusBadRequest)
			return
		}
		obj, err := g.fs.Lookup(path)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		data, err := g.fs.Session().ReadAt(obj, naming.Ref{HasVersion: true, VersionNum: num})
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		w.Write(data)
		return
	}
	data, err := g.fs.ReadFile(path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Write(data)
}
