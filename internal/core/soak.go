package core

import (
	"fmt"
	"path/filepath"
	"time"

	"oceanstore/internal/acl"
	"oceanstore/internal/archive"
	"oceanstore/internal/blobstore"
	"oceanstore/internal/crypt"
	"oceanstore/internal/epidemic"
	"oceanstore/internal/guid"
	"oceanstore/internal/introspect"
	"oceanstore/internal/object"
	"oceanstore/internal/obs"
	"oceanstore/internal/replica"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
	"oceanstore/internal/workload"
)

// SoakConfig sizes a soak world: a meshless, batch-delivery pool large
// enough for 10k nodes, with a client population the traffic engine
// (workload.Engine) drives in a closed or open loop.
type SoakConfig struct {
	// Nodes is the server count.
	Nodes int
	// Objects is how many objects exist before traffic starts; creates
	// grow the set during the run.
	Objects int
	// Secondaries is the floating-replica count per object.
	Secondaries int
	// Clients is the virtual-client population.
	Clients int
	// Faults is f per primary tier (3f+1 members).
	Faults int
	// BlockSize is the object block granularity; soak writes replace
	// block 0, so object state stays bounded over a million updates.
	BlockSize int
	// MaxInFlight is the backpressure threshold: accepted-but-
	// unresolved writes beyond it shed new requests (ErrOverloaded).
	MaxInFlight int
	// WriteTimeout bounds how long a write may stay unresolved in
	// virtual time before the session gives up (abort) — without it,
	// a write stalled behind churn retransmits forever and a closed
	// loop never finishes.
	WriteTimeout time.Duration
	// ArchiveEvery archives a ring every N commits (soak loosens the
	// paper's every-commit coupling so archival cost stays sublinear).
	ArchiveEvery int
	// GossipInterval is the secondary anti-entropy period.
	GossipInterval time.Duration
	// RetainVersions caps each object's retained version history
	// (object.KeepLast); deep-archival copies persist regardless.
	RetainVersions int
	// RetireEvery is the period of the history-retirement sweep.
	RetireEvery time.Duration
	// Guarantees are the session guarantees every client runs under.
	Guarantees Guarantees
	// Backend selects the fragment-store implementation: "" or "mem"
	// for the in-memory NodeStore, "disk" for one blobstore volume per
	// storage node under StoreDir.  The backends share one behavioural
	// contract (archive.Store), so swapping them must not change the
	// run's trajectory — only its real I/O.
	Backend string
	// StoreDir is the volume directory for the disk backend.
	StoreDir string
	// ScrubInterval arms the archival maintenance scheduler: budgeted
	// scrub (re-read + verify) plus rate-limited background repair on
	// this tick period.  0 leaves maintenance off.
	ScrubInterval time.Duration
	// FlushInterval moves store fsync from per-batch to a scheduler
	// group commit on this period (needs ScrubInterval > 0).
	FlushInterval time.Duration
	// ReadService arms the modeled read path when positive: each read
	// picks its server queue-aware (among qualifying floating replicas
	// plus the primary anchor), occupies that node for ReadService in a
	// per-node FIFO, and completes one round trip later through the
	// kernel — so read latency is a real queueing quantity that degrades
	// when few replicas absorb a flash crowd.  0 keeps the legacy
	// synchronous (zero-latency) read.
	ReadService time.Duration
	// Introspect arms the introspective replica controller (§4.7.2): it
	// watches per-object read/write traffic and promotes/demotes
	// floating replicas under hysteresis, budgets, and rate limits.
	Introspect bool
	// IntrospectEpoch is the controller's observation epoch (default
	// 10s).
	IntrospectEpoch time.Duration
	// NodeBudget caps how many floating replicas introspective
	// promotion may place on one node (default 8).  Static placement
	// (Secondaries) is the operator's choice and is not bounded by it.
	NodeBudget int
	// IntrospectCfg tunes the controller; zero fields take defaults.
	IntrospectCfg introspect.ControllerConfig
	// Link model.
	Extent         float64
	Domains        int
	BaseLatency    time.Duration
	LatencyPerUnit time.Duration
	// Shards partitions the kernel's event heap by region (domain mod
	// Shards).  The trajectory is identical at any value (merge
	// execution); large worlds shard so each region's queue stays
	// small.  0 or 1 = unsharded.
	Shards int
}

// DefaultSoakConfig scales a soak world to the given node count:
// objects ~ nodes/16, clients ~ nodes/32 (clamped), one fault per
// tier, WAN-ish latency.
func DefaultSoakConfig(nodes int) SoakConfig {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	return SoakConfig{
		Nodes:           nodes,
		Objects:         clamp(nodes/16, 4, 4096),
		Secondaries:     4,
		Clients:         clamp(nodes/32, 4, 1024),
		Faults:          1,
		BlockSize:       512,
		MaxInFlight:     clamp(nodes/32, 8, 1024),
		WriteTimeout:    2 * time.Minute,
		ArchiveEvery:    256,
		GossipInterval:  30 * time.Second,
		RetainVersions:  8,
		RetireEvery:     5 * time.Minute,
		Guarantees:      ReadYourWrites,
		IntrospectEpoch: 10 * time.Second,
		NodeBudget:      8,
		Extent:          100,
		Domains:         8,
		BaseLatency:     15 * time.Millisecond,
		LatencyPerUnit:  time.Millisecond,
		Shards:          clamp(nodes/16384, 1, 8),
	}
}

// SoakWorld is a pool wired up as a workload.Target: reads are served
// through sessions, writes resolve through the full Fig-5 update path
// (agreement, dissemination, archival), creates provision fresh
// objects with secondaries, and backpressure sheds load once too many
// writes are unresolved.
type SoakWorld struct {
	Pool *Pool
	cfg  SoakConfig

	owner    *Client
	sessions []*Session
	objects  []guid.GUID
	// writers grants every soak client write privilege; bound to each
	// object at creation (the default cert is owner-only).
	writers *acl.ACL

	// await maps an in-flight write to its engine completion callback.
	await    map[update.UpdateID]func(ok bool)
	inflight int

	// Rotation cursors: replica placement and growth attachment.
	nextSecondary int
	growIdx       int
	created       int

	// Modeled read path (ReadService > 0): per-node service-queue
	// tails, grown on demand as the world grows.
	busy []time.Duration
	// hosted counts floating replicas per node — the budget the
	// introspective promoter must respect.
	hosted []int
	// ctrl is the introspective replica controller (nil when off).
	ctrl *introspect.Controller
	// readWire accounts bytes-on-wire for modeled reads (request +
	// response), collected even without a registry.
	readWire  int64
	cReadWire *obs.Counter

	// sched is the archival maintenance scheduler (nil when off).
	sched     *archive.Scheduler
	schedStop func()
}

// NewSoakWorld builds the world: a meshless pool (O(n) construction),
// pre-created objects with floating replicas, and one session per
// virtual client.  All clients share the owner's key ring, so any
// client can read and write any object.
func NewSoakWorld(seed int64, cfg SoakConfig) (*SoakWorld, error) {
	// Retention bounds (DESIGN.md §12): a tentative update either
	// resolves within the session write timeout or was abandoned; one
	// timeout plus two gossip periods covers any copy still in flight,
	// so expiry only ever drops dead weight.  Committed state beyond a
	// small window survives as applied state; laggards catch up by
	// checkpoint transfer.  Without these bounds a million-op run keeps
	// every update alive forever and replays dead tentative entries on
	// every read — the O(ops²) wall the soak hit.
	var tentativeExpire time.Duration
	if cfg.WriteTimeout > 0 {
		tentativeExpire = cfg.WriteTimeout + 2*cfg.GossipInterval
	}
	pc := PoolConfig{
		Nodes:     cfg.Nodes,
		Domains:   cfg.Domains,
		Faults:    cfg.Faults,
		BlockSize: cfg.BlockSize,
		Ring: replica.Config{
			Faults:         cfg.Faults,
			ArchiveEvery:   cfg.ArchiveEvery,
			Archive:        archive.Config{DataShards: 4, TotalFragments: 8},
			GossipInterval: cfg.GossipInterval,
			TreeFanout:     4,
			Retention: epidemic.Retention{
				TentativeExpire: tentativeExpire,
				CommitWindow:    128,
			},
			LogCap:       256,
			HistoryBound: cfg.RetainVersions,
			DropExecuted: true,
		},
		Extent:         cfg.Extent,
		BaseLatency:    cfg.BaseLatency,
		LatencyPerUnit: cfg.LatencyPerUnit,
		NoMesh:         true,
		BatchDelivery:  true,
		Shards:         cfg.Shards,
	}
	switch cfg.Backend {
	case "", "mem":
	case "disk":
		if cfg.StoreDir == "" {
			return nil, fmt.Errorf("core: disk backend needs a StoreDir")
		}
		dir := cfg.StoreDir
		pc.StoreFactory = func(id simnet.NodeID) archive.Store {
			s, err := blobstore.Open(blobstore.Config{
				Path: filepath.Join(dir, fmt.Sprintf("vol-%06d.log", id)),
			})
			if err != nil {
				// Stores materialize lazily deep inside the archive path;
				// a volume that cannot open is an environment failure, not
				// a simulated fault.
				panic(fmt.Sprintf("core: open blobstore volume for node %d: %v", id, err))
			}
			return s
		}
	default:
		return nil, fmt.Errorf("core: unknown store backend %q", cfg.Backend)
	}
	p := NewPool(seed, pc)
	w := &SoakWorld{
		Pool:  p,
		cfg:   cfg,
		await: make(map[update.UpdateID]func(bool)),
	}
	w.owner = p.NewClient(0, crypt.NewSigner(p.K.Rand()))
	for i := 0; i < cfg.Clients; i++ {
		c := p.NewClient(simnet.NodeID(i%cfg.Nodes), crypt.NewSigner(p.K.Rand()))
		c.Keys = w.owner.Keys
		s := c.NewSession(cfg.Guarantees)
		s.UpdateTimeout = cfg.WriteTimeout
		s.OnCommit(func(_ guid.GUID, id update.UpdateID) { w.resolve(id, true) })
		s.OnAbort(func(_ guid.GUID, id update.UpdateID) { w.resolve(id, false) })
		w.sessions = append(w.sessions, s)
	}
	w.writers = &acl.ACL{}
	for _, s := range w.sessions {
		w.writers.Entries = append(w.writers.Entries,
			acl.Entry{PubKey: s.c.Signer.Public(), Priv: acl.PrivWrite})
	}
	for i := 0; i < cfg.Objects; i++ {
		if _, err := w.createObject(); err != nil {
			return nil, err
		}
	}
	// Nodes that join mid-run (GrowAt) become secondaries of existing
	// objects round-robin — promiscuous caching on arrival, O(added).
	p.Net.OnTopology(func(added []simnet.Node) {
		for _, nd := range added {
			if len(w.objects) == 0 {
				return
			}
			obj := w.objects[w.growIdx%len(w.objects)]
			w.growIdx++
			w.addSecondary(obj, nd.ID)
		}
	})
	if cfg.RetireEvery > 0 && cfg.RetainVersions > 0 {
		p.K.Every(cfg.RetireEvery, func() {
			policy := object.KeepLast{N: cfg.RetainVersions}
			for _, obj := range w.objects {
				if ring, ok := p.Ring(obj); ok {
					ring.Retire(policy)
				}
			}
		})
	}
	if cfg.ScrubInterval > 0 {
		w.sched = archive.NewScheduler(p.Arch, archive.SchedulerConfig{
			ScrubInterval: cfg.ScrubInterval,
			// One fragment of slack above the reconstruction floor.
			Threshold:     pc.Ring.Archive.DataShards + 1,
			FlushInterval: cfg.FlushInterval,
		})
		w.schedStop = w.sched.Start()
	}
	if cfg.Introspect {
		w.ctrl = introspect.NewController(cfg.IntrospectCfg, soakHost{w})
		epoch := cfg.IntrospectEpoch
		if epoch <= 0 {
			epoch = 10 * time.Second
		}
		p.K.Every(epoch, w.ctrl.Tick)
	}
	return w, nil
}

// Controller exposes the introspective replica controller (nil when
// the world runs without one).
func (w *SoakWorld) Controller() *introspect.Controller { return w.ctrl }

// ReadWireBytes reports the bytes-on-wire the modeled read path has
// accounted (0 with ReadService off).
func (w *SoakWorld) ReadWireBytes() int64 { return w.readWire }

// Scheduler exposes the archival maintenance scheduler (nil when the
// world runs without one).
func (w *SoakWorld) Scheduler() *archive.Scheduler { return w.sched }

// Instrument attaches observability to the pool, the maintenance
// scheduler, and the introspection layer.
func (w *SoakWorld) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	w.Pool.Instrument(reg, tr)
	if w.sched != nil {
		w.sched.Instrument(reg)
	}
	w.cReadWire = reg.Counter(obs.NodeWide, "introspect", "read_wire_bytes")
	w.cReadWire.Add(w.readWire)
	if w.ctrl != nil {
		w.ctrl.Instrument(reg)
	}
}

// Close stops maintenance and syncs + closes every fragment store —
// mandatory for the disk backend, a no-op pile for the memory one.
func (w *SoakWorld) Close() error {
	if w.schedStop != nil {
		w.schedStop()
		w.schedStop = nil
	}
	return w.Pool.Arch.CloseStores()
}

// BlobStats aggregates real-I/O counters across disk-backed stores,
// and reports how many volumes exist.  Zero volumes on the memory
// backend.  Wall-clock I/O cost lives outside the simulation, so
// these numbers are for the stderr rail, not deterministic reports —
// though in fact they too are pure functions of the trajectory.
func (w *SoakWorld) BlobStats() (blobstore.Stats, int) {
	var agg blobstore.Stats
	vols := 0
	for _, id := range w.Pool.Arch.StoreNodes() {
		bs, ok := w.Pool.Arch.Store(id).(*blobstore.Store)
		if !ok {
			continue
		}
		vols++
		st := bs.Stats()
		agg.Puts += st.Puts
		agg.Gets += st.Gets
		agg.Drops += st.Drops
		agg.BytesWritten += st.BytesWritten
		agg.BytesRead += st.BytesRead
		agg.Syncs += st.Syncs
		agg.Compactions += st.Compactions
		agg.RecoveredFrags += st.RecoveredFrags
		agg.TruncatedBytes += st.TruncatedBytes
	}
	return agg, vols
}

// Objects returns the current object set (grown by creates).
func (w *SoakWorld) Objects() []guid.GUID {
	return append([]guid.GUID(nil), w.objects...)
}

// InFlight reports unresolved accepted writes (backpressure level).
func (w *SoakWorld) InFlight() int { return w.inflight }

// createObject provisions one object with its floating replicas.
func (w *SoakWorld) createObject() (guid.GUID, error) {
	name := fmt.Sprintf("soak-%d", w.created)
	w.created++
	obj, err := w.owner.Create(name, make([]byte, w.cfg.BlockSize))
	if err != nil {
		return guid.Zero, err
	}
	if err := w.Pool.SetACL(w.owner.Signer, obj, w.writers, 2); err != nil {
		return guid.Zero, err
	}
	for j := 0; j < w.cfg.Secondaries; j++ {
		w.addSecondary(obj, w.nextSecondaryNode())
	}
	w.objects = append(w.objects, obj)
	return obj, nil
}

// addSecondary attaches node as a floating replica of obj, skipping
// duplicates (the rotation can lap a small world).
func (w *SoakWorld) addSecondary(obj guid.GUID, node simnet.NodeID) {
	ring, ok := w.Pool.Ring(obj)
	if !ok {
		return
	}
	if _, dup := ring.Secondary(node); dup {
		return
	}
	// AddReplica only errors on unknown objects or duplicate
	// secondaries, both excluded above.
	if w.Pool.AddReplica(obj, node) == nil {
		w.hostedAdd(node, 1)
	}
}

// hostedAdd adjusts the per-node floating-replica census, growing the
// slice on demand (the world can grow mid-run).
func (w *SoakWorld) hostedAdd(node simnet.NodeID, d int) {
	for int(node) >= len(w.hosted) {
		w.hosted = append(w.hosted, 0)
	}
	w.hosted[node] += d
}

// HostedAt reports how many floating replicas node currently hosts.
func (w *SoakWorld) HostedAt(node simnet.NodeID) int {
	if int(node) >= len(w.hosted) {
		return 0
	}
	return w.hosted[node]
}

// nextSecondaryNode rotates replica placement over live nodes.
func (w *SoakWorld) nextSecondaryNode() simnet.NodeID {
	n := w.Pool.Net.Len()
	for tries := 0; tries < n; tries++ {
		id := simnet.NodeID(w.nextSecondary % n)
		w.nextSecondary++
		if !w.Pool.Net.Node(id).Down() {
			return id
		}
	}
	return 0
}

// soakHost adapts the world to the controller's Host interface: the
// controller picks WHICH objects change tier; the world places the
// replicas and owns the per-node budget.
type soakHost struct{ w *SoakWorld }

func (h soakHost) NumObjects() int { return len(h.w.objects) }

func (h soakHost) Replicas(obj int) int {
	if obj < 0 || obj >= len(h.w.objects) {
		return 0
	}
	ring, ok := h.w.Pool.Ring(h.w.objects[obj])
	if !ok {
		return 0
	}
	return ring.SecondaryCount()
}

// Promote places one more floating replica of the object, rotating
// over live nodes with spare budget; false when every node is down,
// already a replica, or at its cap — the controller counts that as a
// budget denial.
func (h soakHost) Promote(obj int) bool {
	w := h.w
	if obj < 0 || obj >= len(w.objects) {
		return false
	}
	oid := w.objects[obj]
	ring, ok := w.Pool.Ring(oid)
	if !ok {
		return false
	}
	n := w.Pool.Net.Len()
	for tries := 0; tries < n; tries++ {
		id := simnet.NodeID(w.nextSecondary % n)
		w.nextSecondary++
		if w.Pool.Net.Node(id).Down() {
			continue
		}
		if _, dup := ring.Secondary(id); dup {
			continue
		}
		if w.cfg.NodeBudget > 0 && w.HostedAt(id) >= w.cfg.NodeBudget {
			continue
		}
		if w.Pool.AddReplica(oid, id) == nil {
			w.hostedAdd(id, 1)
			return true
		}
	}
	return false
}

// Demote retires the coldest floating replica (fewest serves, ties to
// the lower node — Secondaries is node-sorted, so the choice is
// deterministic).
func (h soakHost) Demote(obj int) bool {
	w := h.w
	if obj < 0 || obj >= len(w.objects) {
		return false
	}
	oid := w.objects[obj]
	ring, ok := w.Pool.Ring(oid)
	if !ok {
		return false
	}
	secs := ring.Secondaries()
	if len(secs) == 0 {
		return false
	}
	victim := secs[0]
	for _, s := range secs[1:] {
		if s.Reads < victim.Reads {
			victim = s
		}
	}
	if w.Pool.RemoveReplica(oid, victim.Node) != nil {
		return false
	}
	w.hostedAdd(victim.Node, -1)
	return true
}

// Do implements workload.Target.  Reads and creates complete
// synchronously (a read is a local replica inspection in this
// simulation); writes resolve when the primary tier's decision — or
// the session's timeout — arrives.
func (w *SoakWorld) Do(req workload.Request, done func(ok bool)) error {
	s := w.sessions[req.Client%len(w.sessions)]
	switch req.Kind {
	case workload.OpCreate:
		if w.cfg.MaxInFlight > 0 && w.inflight >= w.cfg.MaxInFlight {
			return workload.ErrOverloaded
		}
		_, err := w.createObject()
		done(err == nil)
	case workload.OpWrite:
		if w.cfg.MaxInFlight > 0 && w.inflight >= w.cfg.MaxInFlight {
			return workload.ErrOverloaded
		}
		idx := req.Object % len(w.objects)
		obj := w.objects[idx]
		if w.ctrl != nil {
			w.ctrl.ObserveWrite(idx)
		}
		size := req.Size
		if size > w.cfg.BlockSize {
			size = w.cfg.BlockSize
		}
		if size < 1 {
			size = 1
		}
		id, err := s.Replace(obj, 0, make([]byte, size))
		if err != nil {
			done(false)
			return nil
		}
		w.await[id] = done
		w.inflight++
	default: // OpRead
		idx := req.Object % len(w.objects)
		obj := w.objects[idx]
		if w.ctrl != nil {
			w.ctrl.ObserveRead(idx)
		}
		if w.cfg.ReadService <= 0 {
			_, err := s.Read(obj)
			done(err == nil)
			return nil
		}
		w.modeledRead(s, obj, done)
	}
	return nil
}

// readWireOverhead is the per-direction framing cost the modeled read
// charges on top of the payload.
const readWireOverhead = 64

// modeledRead serves a read with explicit service-time and queueing
// semantics: among the qualifying floating replicas (plus the primary
// anchor, which always qualifies) it picks the server whose predicted
// completion — request latency, FIFO queue wait, ReadService, response
// latency — is earliest, ties to the lower node ID; occupies that
// server; and completes the read through the kernel one round trip
// later.  With a handful of replicas absorbing a flash crowd the queue
// wait dominates and the read tail explodes — exactly the signal the
// introspective controller reacts to by promoting.
func (w *SoakWorld) modeledRead(s *Session, obj guid.GUID, done func(ok bool)) {
	ring, ok := w.Pool.Ring(obj)
	if !ok {
		done(false)
		return
	}
	now := w.Pool.K.Now()
	client := s.c.Node
	var (
		bestNode simnet.NodeID
		bestRep  *epidemic.Replica
		bestSec  *replica.Secondary
		bestDone time.Duration = -1
	)
	consider := func(node simnet.NodeID, rep *epidemic.Replica, sec *replica.Secondary) {
		lat := w.Pool.Net.Latency(client, node)
		start := now + lat
		if b := w.busyAt(node); b > start {
			start = b
		}
		finish := start + w.cfg.ReadService + lat
		if bestDone < 0 || finish < bestDone || (finish == bestDone && node < bestNode) {
			bestNode, bestRep, bestSec, bestDone = node, rep, sec, finish
		}
	}
	if s.g&ReadCommitted == 0 {
		for _, sec := range ring.Secondaries() {
			if sec.Stale || w.Pool.Net.Node(sec.Node).Down() {
				continue
			}
			if !s.acceptable(obj, sec.Rep) {
				continue
			}
			consider(sec.Node, sec.Rep, sec)
		}
	}
	consider(ring.PrimaryAnchor(), ring.PrimaryState(), nil)
	// Occupy the chosen server's FIFO slot and charge the wire.
	start := now + w.Pool.Net.Latency(client, bestNode)
	if b := w.busyAt(bestNode); b > start {
		start = b
	}
	w.setBusy(bestNode, start+w.cfg.ReadService)
	if bestSec != nil {
		bestSec.Reads++
	}
	wire := int64(2*readWireOverhead + w.cfg.BlockSize)
	w.readWire += wire
	w.cReadWire.Add(wire)
	rep := bestRep
	w.Pool.K.After(bestDone-now, func() {
		_, err := s.ReadReplica(obj, rep)
		done(err == nil)
	})
}

// busyAt reports the node's service-queue tail.
func (w *SoakWorld) busyAt(node simnet.NodeID) time.Duration {
	if int(node) >= len(w.busy) {
		return 0
	}
	return w.busy[node]
}

// setBusy extends the node's service-queue tail, growing the slice on
// demand.
func (w *SoakWorld) setBusy(node simnet.NodeID, t time.Duration) {
	for int(node) >= len(w.busy) {
		w.busy = append(w.busy, 0)
	}
	w.busy[node] = t
}

// resolve completes an awaited write (commit, abort, or timeout).
func (w *SoakWorld) resolve(id update.UpdateID, ok bool) {
	done, found := w.await[id]
	if !found {
		return
	}
	delete(w.await, id)
	w.inflight--
	done(ok)
}

// StartChurn bounces one node per period (down for downFor), cycling
// through the world but sparing node 0 so the owner's anchor stays
// up.  Returns a cancel function.
func (w *SoakWorld) StartChurn(every, downFor time.Duration) (stop func()) {
	next := 1
	return w.Pool.K.Every(every, func() {
		n := w.Pool.Net.Len()
		if n < 2 {
			return
		}
		id := simnet.NodeID(next % n)
		if id == 0 {
			next++
			id = simnet.NodeID(next % n)
		}
		next++
		w.Pool.Net.Bounce(id, w.Pool.K.Now(), downFor)
	})
}

// GrowAt schedules count fresh nodes to join the world at virtual
// time t; on arrival they pick up floating replicas via the topology
// callback registered in NewSoakWorld.
func (w *SoakWorld) GrowAt(t time.Duration, count int) {
	w.Pool.Net.GrowAt(t, count, w.cfg.Extent, w.cfg.Domains)
}
