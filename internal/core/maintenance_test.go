package core

import (
	"testing"
	"time"

	"oceanstore/internal/crypt"
	"oceanstore/internal/simnet"
)

func TestMaintenanceHealsLocationAfterCrashes(t *testing.T) {
	p := smallPool(50)
	p.Mesh.PointerTTL = 3 * time.Minute
	stop := p.StartMaintenance(MaintenanceConfig{
		Republish:        30 * time.Second,
		MeshRepair:       time.Minute,
		ArchiveSweep:     2 * time.Minute,
		ArchiveThreshold: 4,
		TreeRepair:       time.Minute,
	})
	defer stop()

	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("healed", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Extra replicas so the object survives primary loss in the mesh.
	for _, n := range []simnet.NodeID{10, 11, 12} {
		if err := p.AddReplica(obj, n); err != nil {
			t.Fatal(err)
		}
	}
	p.Run(time.Minute)

	// Crash nodes including some holders; do NOT call any repair by
	// hand — maintenance must do it.
	for _, n := range []simnet.NodeID{0, 1, 5, 6, 7, 10} {
		p.Net.Node(n).SetDown(true)
	}
	p.Run(10 * time.Minute)

	holder, err := p.Locate(18, obj)
	if err != nil {
		t.Fatalf("locate after unattended crashes: %v", err)
	}
	if p.Net.Node(holder).Down() {
		t.Fatalf("located a dead holder %d", holder)
	}
	// The dissemination tree self-repaired: no live member parented to a
	// dead node.
	ring, _ := p.Ring(obj)
	for _, m := range ring.Tree().Members() {
		if p.Net.Node(m).Down() {
			continue
		}
		parent, err := ring.Tree().Parent(m)
		if err != nil || parent == simnet.None {
			continue
		}
		if p.Net.Node(parent).Down() {
			t.Fatalf("member %d still parented to dead %d", m, parent)
		}
	}
}

func TestMaintenanceRepairsArchives(t *testing.T) {
	p := smallPool(51)
	stop := p.StartMaintenance(MaintenanceConfig{
		ArchiveSweep:     time.Minute,
		ArchiveThreshold: 6,
	})
	defer stop()
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("arch", []byte("durable data"))
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := p.Ring(obj)
	root := ring.ArchiveRoots[0]
	// Destroy fragments directly (disk loss) until below threshold.
	placement, _ := p.Arch.Placement(root)
	removed := 0
	for idx, nid := range placement {
		if p.Arch.LiveFragments(root) <= 5 {
			break
		}
		p.Arch.Store(nid).Drop(root, idx)
		removed++
	}
	if p.Arch.LiveFragments(root) > 5 {
		t.Fatalf("could not degrade archive (removed %d)", removed)
	}
	p.Run(5 * time.Minute)
	if live := p.Arch.LiveFragments(root); live < 8 {
		t.Fatalf("maintenance left archive at %d live fragments", live)
	}
}

func TestMaintenanceStops(t *testing.T) {
	p := smallPool(52)
	stop := p.StartMaintenance(DefaultMaintenanceConfig())
	stop()
	before := p.K.Pending()
	p.Run(time.Hour)
	// After stop, the periodic chain unwinds: pending work drains to 0.
	if p.K.Pending() > before {
		t.Fatalf("maintenance still scheduling after stop: %d pending", p.K.Pending())
	}
}
