package core

import (
	"testing"
	"time"

	"oceanstore/internal/acl"
	"oceanstore/internal/archive"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/update"
)

func smallPool(seed int64) *Pool {
	cfg := DefaultPoolConfig()
	cfg.Nodes = 24
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	cfg.BlockSize = 64
	return NewPool(seed, cfg)
}

func TestCreateReadWrite(t *testing.T) {
	p := smallPool(1)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("notes", []byte("hello "))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(ACID)
	got, err := sess.Read(obj)
	if err != nil || string(got) != "hello " {
		t.Fatalf("initial read %q err %v", got, err)
	}
	if _, err := sess.Append(obj, []byte("world")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	got, err = sess.Read(obj)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("after append %q err %v", got, err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	p := smallPool(2)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	if _, err := alice.Create("x", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Create("x", nil); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestReaderRestrictionByKeyDistribution(t *testing.T) {
	p := smallPool(3)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	bob := p.NewClient(21, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("secret", []byte("classified"))
	if err != nil {
		t.Fatal(err)
	}
	// Bob has no key: read denied at the client (servers only ever see
	// ciphertext anyway).
	if _, err := bob.NewSession(ACID).Read(obj); err == nil {
		t.Fatal("keyless read succeeded")
	}
	if err := alice.GrantRead(obj, bob); err != nil {
		t.Fatal(err)
	}
	got, err := bob.NewSession(ACID).Read(obj)
	if err != nil || string(got) != "classified" {
		t.Fatalf("after grant: %q %v", got, err)
	}
	if err := bob.GrantRead(obj, alice); err != nil {
		t.Fatal(err) // bob can re-share; keys are capabilities
	}
}

func TestWriterRestrictionViaACL(t *testing.T) {
	p := smallPool(4)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	mallory := p.NewClient(21, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("guestbook", []byte("start;"))
	if err != nil {
		t.Fatal(err)
	}
	alice.GrantRead(obj, mallory)

	// Mallory can read but her writes are dropped by servers.
	msess := mallory.NewSession(ACID)
	if _, err := msess.Append(obj, []byte("spam;")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	got, _ := alice.NewSession(ACID).Read(obj)
	if string(got) != "start;" {
		t.Fatalf("unauthorized write applied: %q", got)
	}

	// Alice grants Mallory write privilege by re-certifying the ACL.
	grant := &acl.ACL{Entries: []acl.Entry{{PubKey: mallory.Signer.Public(), Priv: acl.PrivWrite}}}
	if err := p.SetACL(alice.Signer, obj, grant, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := msess.Append(obj, []byte("hi;")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	got, _ = alice.NewSession(ACID).Read(obj)
	if string(got) != "start;hi;" {
		t.Fatalf("authorized write missing: %q", got)
	}
}

func TestFloatingReplicasAndLocation(t *testing.T) {
	p := smallPool(5)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("doc", []byte("d"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddReplica(obj, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddReplica(obj, 11); err != nil {
		t.Fatal(err)
	}
	// The mesh locates some live replica (primary or secondary).
	holder, err := p.Locate(15, obj)
	if err != nil {
		t.Fatal(err)
	}
	if holder < 0 {
		t.Fatal("no holder")
	}
	if err := p.RemoveReplica(obj, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveReplica(obj, 10); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestSessionGuaranteesReadYourWrites(t *testing.T) {
	p := smallPool(6)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("ryw", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	// Add secondaries that will lag (no gossip configured in this window).
	p.AddReplica(obj, 10)
	p.AddReplica(obj, 11)

	sess := alice.NewSession(ReadYourWrites | MonotonicReads)
	if _, err := sess.Append(obj, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	// Immediately read: lagging secondaries have not seen the write, so
	// RYW must route to a replica that has (the primary, in the worst
	// case) — never returning stale "".  Advance a little so tentative
	// copies land somewhere.
	p.Run(30 * time.Second)
	got, err := sess.Read(obj)
	if err != nil || string(got) != "mine" {
		t.Fatalf("RYW read %q err %v", got, err)
	}
	// A fresh session without guarantees may read anywhere — but content
	// eventually converges.
	p.Run(time.Minute)
	got, _ = alice.NewSession(0).Read(obj)
	if string(got) != "mine" {
		t.Fatalf("converged read %q", got)
	}
}

func TestTentativeVsCommittedReads(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Nodes = 24
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	cfg.BlockSize = 64
	// Long base latency so the commit takes a while.
	cfg.BaseLatency = 200 * time.Millisecond
	cfg.Ring.GossipInterval = 100 * time.Millisecond
	p := NewPool(7, cfg)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("opt", []byte(""))
	if err != nil {
		t.Fatal(err)
	}
	p.AddReplica(obj, 10)
	alice.Spread = 2

	opt := alice.NewSession(0)       // optimistic: tentative reads
	strong := alice.NewSession(ACID) // committed reads only
	if _, err := opt.Append(obj, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	// Before the Byzantine round completes, gossip has spread the
	// tentative update; optimistic reads see it, committed reads do not.
	p.Run(350 * time.Millisecond)
	og, _ := opt.Read(obj)
	sg, _ := strong.Read(obj)
	if string(og) != "fast" {
		t.Fatalf("optimistic read %q, want tentative data", og)
	}
	if string(sg) != "" {
		t.Fatalf("committed read %q before commit", sg)
	}
	p.Run(30 * time.Second)
	sg, _ = strong.Read(obj)
	if string(sg) != "fast" {
		t.Fatalf("committed read %q after commit", sg)
	}
}

func TestCommitAbortCallbacks(t *testing.T) {
	p := smallPool(8)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("cb", []byte("AABB"))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(ACID)
	var commits, aborts []update.UpdateID
	sess.OnCommit(func(o guid.GUID, id update.UpdateID) { commits = append(commits, id) })
	sess.OnAbort(func(o guid.GUID, id update.UpdateID) { aborts = append(aborts, id) })

	okID, err := sess.Append(obj, []byte("CC"))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	// A stale version-guarded update aborts and fires OnAbort.
	ed, _, err := sess.Editor(obj)
	if err != nil {
		t.Fatal(err)
	}
	stale := update.NewVersionGuarded(obj, 999, update.BlockOps(ed.Append([]byte("XX"))))
	badID := sess.Submit(stale)
	p.Run(30 * time.Second)

	if len(commits) != 1 || commits[0] != okID {
		t.Fatalf("commits = %v, want [%v]", commits, okID)
	}
	if len(aborts) != 1 || aborts[0] != badID {
		t.Fatalf("aborts = %v, want [%v]", aborts, badID)
	}
}

func TestTransactionCommitAndConflict(t *testing.T) {
	p := smallPool(9)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	obj, err := alice.Create("acct", []byte("balance=100"))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(ACID)

	// Two transactions read the same snapshot and both try to commit.
	tx1, err := sess.Begin(obj)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := sess.Begin(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Replace(0, []byte("balance=150")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Replace(0, []byte("balance=050")); err != nil {
		t.Fatal(err)
	}
	// Staged reads see own writes.
	if got, _ := tx1.Read(); string(got) != "balance=150" {
		t.Fatalf("tx1 staged read %q", got)
	}
	if _, err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	p.Run(time.Minute)
	if tx1.Status() != TxCommitted {
		t.Fatalf("tx1 status %v", tx1.Status())
	}
	if tx2.Status() != TxAborted {
		t.Fatalf("tx2 status %v, want aborted (conflict)", tx2.Status())
	}
	got, _ := sess.Read(obj)
	if string(got) != "balance=150" {
		t.Fatalf("final balance %q", got)
	}
	// Double commit is an error; empty tx commits trivially.
	if _, err := tx1.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	tx3, _ := sess.Begin(obj)
	if _, err := tx3.Commit(); err != nil || tx3.Status() != TxCommitted {
		t.Fatal("empty tx should commit trivially")
	}
	if err := tx3.Append([]byte("x")); err == nil {
		t.Fatal("staging after commit accepted")
	}
}

func TestFSFacade(t *testing.T) {
	p := smallPool(10)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	fs, err := alice.NewFS("home")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/docs"); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	if err := fs.WriteFile("/docs/readme.txt", []byte("read me")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	got, err := fs.ReadFile("/docs/readme.txt")
	if err != nil || string(got) != "read me" {
		t.Fatalf("read file %q err %v", got, err)
	}
	// Overwrite.
	if err := fs.WriteFile("/docs/readme.txt", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	got, _ = fs.ReadFile("/docs/readme.txt")
	if string(got) != "v2" {
		t.Fatalf("after overwrite %q", got)
	}
	// Listing.
	names, err := fs.ReadDir("/")
	if err != nil || len(names) != 1 || names[0] != "docs/" {
		t.Fatalf("readdir / = %v err %v", names, err)
	}
	names, _ = fs.ReadDir("/docs")
	if len(names) != 1 || names[0] != "readme.txt" {
		t.Fatalf("readdir /docs = %v", names)
	}
	// Errors.
	if _, err := fs.ReadFile("/docs"); err == nil {
		t.Fatal("read of directory accepted")
	}
	if _, err := fs.ReadFile("/missing"); err == nil {
		t.Fatal("missing file read")
	}
	if err := fs.Mkdir("/docs"); err == nil {
		t.Fatal("mkdir over existing accepted")
	}
	if err := fs.WriteFile("relative", nil); err == nil {
		t.Fatal("relative path accepted")
	}
	// Remove requires empty directories.
	if err := fs.Remove("/docs"); err == nil {
		t.Fatal("removed non-empty directory")
	}
	if err := fs.Remove("/docs/readme.txt"); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	if err := fs.Remove("/docs"); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	names, _ = fs.ReadDir("/")
	if len(names) != 0 {
		t.Fatalf("root not empty after removes: %v", names)
	}
}

func TestLookupAndVersionHistory(t *testing.T) {
	p := smallPool(11)
	alice := p.NewClient(20, crypt.NewSigner(p.K.Rand()))
	fs, err := alice.NewFS("h")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	// Overwrite once so the object gains a committed successor version.
	if err := fs.WriteFile("/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	p.Run(30 * time.Second)
	obj, err := fs.Lookup("/f")
	if err != nil {
		t.Fatal(err)
	}
	ring, ok := p.Ring(obj)
	if !ok {
		t.Fatal("no ring for file object")
	}
	v := ring.CommittedVersion()
	if v == nil || v.Num == 0 {
		t.Fatalf("expected an advanced committed version, got %+v", v)
	}
	// Version GUIDs chain: Prev must reference some earlier version.
	if v.Prev.IsZero() {
		t.Fatal("version chain broken: zero Prev")
	}
}
