package core

import (
	"fmt"
	"testing"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/simnet"
)

// TestManyObjectsManyClients exercises the pool with 12 objects, 6
// clients and interleaved cross-object traffic — primary tiers rotate
// across shared physical nodes, so this is the test that catches
// cross-object message bleed.
func TestManyObjectsManyClients(t *testing.T) {
	cfg := DefaultPoolConfig()
	cfg.Nodes = 48
	cfg.BlockSize = 64
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	p := NewPool(70, cfg)

	var clients []*Client
	for i := 0; i < 6; i++ {
		clients = append(clients, p.NewClient(simnet.NodeID(40+i), crypt.NewSigner(p.K.Rand())))
	}
	type objInfo struct {
		id    guid.GUID
		owner int
		want  string
	}
	var objs []objInfo
	for i := 0; i < 12; i++ {
		owner := i % len(clients)
		id, err := clients[owner].Create(fmt.Sprintf("obj-%d", i), []byte(fmt.Sprintf("o%d:", i)))
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, objInfo{id: id, owner: owner, want: fmt.Sprintf("o%d:", i)})
	}
	// Interleaved writes: each owner appends to each of its objects.
	sessions := make([]*Session, len(clients))
	for i, c := range clients {
		sessions[i] = c.NewSession(ACID)
	}
	for round := 0; round < 3; round++ {
		for i := range objs {
			tag := fmt.Sprintf("r%d;", round)
			if _, err := sessions[objs[i].owner].Append(objs[i].id, []byte(tag)); err != nil {
				t.Fatal(err)
			}
			objs[i].want += tag
		}
		p.Run(time.Minute)
	}
	// Every object holds exactly its own writes — no bleed across rings.
	for i := range objs {
		got, err := sessions[objs[i].owner].Read(objs[i].id)
		if err != nil {
			t.Fatalf("obj %d read: %v", i, err)
		}
		if string(got) != objs[i].want {
			t.Fatalf("obj %d content %q, want %q", i, got, objs[i].want)
		}
	}
	// All objects remain locatable through the global mesh.
	for i := range objs {
		if _, err := p.Locate(45, objs[i].id); err != nil {
			t.Fatalf("obj %d not locatable: %v", i, err)
		}
	}
}

// TestPoolDeterminismAtScale runs the same multi-object workload twice
// and demands identical traffic statistics — the reproducibility the
// experiment harness depends on.
func TestPoolDeterminismAtScale(t *testing.T) {
	run := func() (int64, int) {
		cfg := DefaultPoolConfig()
		cfg.Nodes = 32
		cfg.BlockSize = 64
		cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
		p := NewPool(71, cfg)
		c := p.NewClient(30, crypt.NewSigner(p.K.Rand()))
		sess := c.NewSession(ACID)
		var ids []guid.GUID
		for i := 0; i < 4; i++ {
			id, err := c.Create(fmt.Sprintf("d%d", i), []byte("x"))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			p.AddReplica(id, simnet.NodeID(10+i))
		}
		for round := 0; round < 2; round++ {
			for _, id := range ids {
				sess.Append(id, []byte("y"))
			}
			p.Run(time.Minute)
		}
		st := p.Net.Stats()
		return st.BytesSent, st.MessagesSent
	}
	b1, m1 := run()
	b2, m2 := run()
	if b1 != b2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", b1, m1, b2, m2)
	}
}
