package audit_test

import (
	"math/rand"
	"testing"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/audit"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/object"
	"oceanstore/internal/replica"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
)

// ringWorld stands up one object ring with committed history and a few
// secondaries.
func ringWorld(t *testing.T, seed int64) (*sim.Kernel, *simnet.Network, *replica.Ring, []simnet.NodeID) {
	t.Helper()
	k := sim.NewKernel(seed)
	net := simnet.New(k, simnet.Config{BaseLatency: 20 * time.Millisecond})
	nodes := net.AddRandomNodes(24, 30, 4)
	arch := archive.NewService(net, nodes[4:20])
	key := crypt.NewBlockKey(rand.New(rand.NewSource(seed)))
	v0 := object.NewObject([]byte("base."), 64, key)
	obj := guid.FromData([]byte("audited-object"))
	ring, err := replica.NewRing(net, []simnet.NodeID{0, 1, 2, 3}, v0, obj, arch, replica.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	secs := []simnet.NodeID{10, 11, 12}
	for _, n := range secs {
		if _, err := ring.AddSecondary(n); err != nil {
			t.Fatal(err)
		}
	}
	clientID := guid.FromData([]byte("client"))
	base := ring.CommittedVersion()
	for i := 0; i < 3; i++ {
		ed, err := object.NewEditor(base, key)
		if err != nil {
			t.Fatal(err)
		}
		u := update.NewUnconditional(obj, update.BlockOps(ed.Append([]byte("entry\n"))))
		u.ClientID = clientID
		u.Seq = uint64(i + 1)
		u.Timestamp = k.Now()
		ring.Submit(23, u, 0, nil)
		k.RunFor(10 * time.Second)
		base = ring.CommittedVersion()
	}
	k.RunFor(30 * time.Second)
	return k, net, ring, secs
}

func TestReplicaAuditorRepairsTamperedSecondary(t *testing.T) {
	k, net, ring, secs := ringWorld(t, 3)
	ra := audit.NewReplicaAuditor(net, audit.Config{Interval: time.Minute, PollPeers: 3}, ring)
	ra.Start()

	victim := secs[1]
	sec, _ := ring.Secondary(victim)
	sec.Rep.TamperBase(func(v *object.Version) {
		if len(v.Blocks) > 0 && len(v.Blocks[0].CT) > 0 {
			v.Blocks[0].CT[0] ^= 0xFF
		}
	})
	pd := ring.PrimaryDigest()
	if sd, _ := ring.SecondaryDigest(victim); sd.Sum == pd.Sum {
		t.Fatal("tamper did not change the digest")
	}

	k.RunFor(10 * time.Minute)
	st := ra.Stats()
	if st.Detections == 0 || st.Repairs == 0 {
		t.Fatalf("tamper not caught: %+v", st)
	}
	if sd, _ := ring.SecondaryDigest(victim); sd.Sum != pd.Sum {
		t.Fatal("secondary still corrupt after audit repair")
	}
}

func TestReplicaAuditorQuietWhenHealthy(t *testing.T) {
	k, net, ring, _ := ringWorld(t, 5)
	ra := audit.NewReplicaAuditor(net, audit.Config{Interval: time.Minute, PollPeers: 3}, ring)
	ra.Start()
	k.RunFor(10 * time.Minute)
	st := ra.Stats()
	if st.Checks == 0 {
		t.Fatal("auditor never checked anything")
	}
	if st.Detections != 0 || st.Repairs != 0 {
		t.Fatalf("false alarms on healthy replicas: %+v", st)
	}
}

func TestWithoutReplicaAuditorTamperPersists(t *testing.T) {
	k, _, ring, secs := ringWorld(t, 3)
	victim := secs[1]
	sec, _ := ring.Secondary(victim)
	sec.Rep.TamperBase(func(v *object.Version) {
		if len(v.Blocks) > 0 && len(v.Blocks[0].CT) > 0 {
			v.Blocks[0].CT[0] ^= 0xFF
		}
	})
	k.RunFor(10 * time.Minute)
	pd := ring.PrimaryDigest()
	if sd, _ := ring.SecondaryDigest(victim); sd.Sum == pd.Sum {
		t.Fatal("corruption healed itself without an auditor")
	}
}
