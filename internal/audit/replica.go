package audit

import (
	"time"

	"oceanstore/internal/obs"
	"oceanstore/internal/replica"
	"oceanstore/internal/simnet"
)

// ReplicaAuditor extends the sampled-audit idea to the floating
// replicas: a secondary's committed state is a deterministic function
// of the primary's serialisation, so any digest mismatch at equal
// commit height is silent state corruption on an untrusted server —
// detected by sampling, fixed by targeted state transfer.  Digest
// exchange is modelled as one poll/vote round trip on the simulated
// network so audit bytes stay accounted.

// ReplicaStats are the replica auditor's always-on counters.
type ReplicaStats struct {
	Checks     int64 // digest comparisons performed
	Skipped    int64 // secondaries behind the primary (lag, not damage)
	Detections int64 // digest mismatches at equal height
	Repairs    int64 // secondaries restored by state transfer
}

// ReplicaAuditor audits the secondaries of a set of rings.
type ReplicaAuditor struct {
	net *simnet.Network
	cfg Config

	rings  []*replica.Ring
	cancel func()

	stats ReplicaStats
	om    *replicaAuditMetrics
}

type replicaAuditMetrics struct {
	checks, detections, repairs *obs.Counter
}

// NewReplicaAuditor creates an auditor over the given rings (more may
// be added before Start).
func NewReplicaAuditor(net *simnet.Network, cfg Config, rings ...*replica.Ring) *ReplicaAuditor {
	return &ReplicaAuditor{net: net, cfg: cfg.withDefaults(), rings: rings}
}

// AddRing registers another object's ring for auditing.
func (ra *ReplicaAuditor) AddRing(r *replica.Ring) { ra.rings = append(ra.rings, r) }

// Instrument attaches registry counters (counting never steers).
func (ra *ReplicaAuditor) Instrument(reg *obs.Registry) {
	if reg == nil {
		ra.om = nil
		return
	}
	ra.om = &replicaAuditMetrics{
		checks:     reg.Counter(obs.NodeWide, "audit", "replica_checks"),
		detections: reg.Counter(obs.NodeWide, "audit", "replica_detections"),
		repairs:    reg.Counter(obs.NodeWide, "audit", "replica_repairs"),
	}
}

// Start arms the periodic digest sweep.
func (ra *ReplicaAuditor) Start() {
	if ra.cancel != nil {
		return
	}
	ra.cancel = ra.net.K.Every(ra.cfg.Interval, ra.tick)
}

// Stop disarms it.
func (ra *ReplicaAuditor) Stop() {
	if ra.cancel != nil {
		ra.cancel()
		ra.cancel = nil
	}
}

// Stats returns a copy of the counters.
func (ra *ReplicaAuditor) Stats() ReplicaStats { return ra.stats }

// tick samples up to PollPeers secondaries per ring and compares their
// committed-state digests against the primary's.
func (ra *ReplicaAuditor) tick() {
	rng := ra.net.K.Rand()
	for _, ring := range ra.rings {
		secs := ring.Secondaries()
		if len(secs) == 0 {
			continue
		}
		pd := ring.PrimaryDigest()
		want := ra.cfg.PollPeers
		if want > len(secs) {
			want = len(secs)
		}
		for _, i := range rng.Perm(len(secs))[:want] {
			sec := secs[i]
			if ra.net.Node(sec.Node).Down() {
				continue
			}
			// Account the poll/vote round trip: a digest request and a
			// fixed-size digest reply.
			ra.net.Send(ring.PrimaryNodes()[0], sec.Node, KindPoll, nil, pollWireSize)
			ra.net.Send(sec.Node, ring.PrimaryNodes()[0], KindVote, nil, voteWireSize)
			sd, ok := ring.SecondaryDigest(sec.Node)
			if !ok {
				continue
			}
			ra.stats.Checks++
			if ra.om != nil {
				ra.om.checks.Inc()
			}
			if sd.Height != pd.Height {
				// Behind the primary: lag is the epidemic tier's normal
				// state, not corruption.  Gossip will catch it up.
				ra.stats.Skipped++
				continue
			}
			if sd.Sum == pd.Sum {
				continue
			}
			ra.stats.Detections++
			if ra.om != nil {
				ra.om.detections.Inc()
			}
			if err := ring.RepairSecondary(sec.Node); err == nil {
				ra.stats.Repairs++
				if ra.om != nil {
					ra.om.repairs.Inc()
				}
			}
		}
	}
}

// interval is exported for callers aligning experiment horizons with
// the audit cadence.
func (ra *ReplicaAuditor) Interval() time.Duration { return ra.cfg.Interval }
