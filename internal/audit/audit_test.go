package audit_test

import (
	"math/rand"
	"testing"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/audit"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// auditWorld builds a 16-store world with three archives and a default
// fast-cadence auditor config.
func auditWorld(t *testing.T, seed int64) (*sim.Kernel, *simnet.Network, *archive.Service) {
	t.Helper()
	k := sim.NewKernel(seed)
	net := simnet.New(k, simnet.Config{BaseLatency: 10 * time.Millisecond})
	nodes := net.AddRandomNodes(16, 100, 4)
	svc := archive.NewService(net, nodes)
	cfg := archive.Config{DataShards: 4, TotalFragments: 16}
	for i := 0; i < 3; i++ {
		data := make([]byte, 1200)
		rand.New(rand.NewSource(seed + int64(i))).Read(data)
		if _, err := svc.Archive(data, cfg, nil); err != nil {
			t.Fatal(err)
		}
	}
	return k, net, svc
}

func fastCfg() audit.Config {
	return audit.Config{
		Interval:    time.Minute,
		SampleRoots: 3,
		PollPeers:   4,
	}
}

func TestHealthyWorldStaysQuiet(t *testing.T) {
	k, net, svc := auditWorld(t, 1)
	a := audit.New(net, svc, fastCfg())
	a.Start()
	k.RunUntil(time.Hour)
	st := a.Stats()
	if st.Polls == 0 || st.Agrees == 0 {
		t.Fatalf("auditor idle in a healthy world: %+v", st)
	}
	if st.Detections != 0 || st.Disagrees != 0 || st.Repairs != 0 {
		t.Fatalf("false alarms in a healthy world: %+v", st)
	}
	if st.Healthy == 0 {
		t.Fatalf("no clean bills of health issued: %+v", st)
	}
}

func TestAuditDetectsAndRepairsBitRot(t *testing.T) {
	k, net, svc := auditWorld(t, 3)
	a := audit.New(net, svc, fastCfg())
	a.Start()

	// Rot several fragments at t=5m.
	k.RunUntil(5 * time.Minute)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		if _, ok := svc.CorruptRandom(simnet.NodeID(i), rng); !ok {
			t.Fatalf("node %d held nothing", i)
		}
	}
	if len(svc.DamagedRoots()) == 0 {
		t.Fatal("no damage recorded")
	}

	k.RunUntil(60 * time.Minute)
	st := a.Stats()
	if st.Detections == 0 {
		t.Fatalf("auditor never detected the rot: %+v", st)
	}
	if st.Repairs == 0 {
		t.Fatalf("auditor never repaired: %+v", st)
	}
	if left := svc.DamagedRoots(); len(left) != 0 {
		t.Fatalf("unrepaired damage remains: %v (stats %+v)", left, st)
	}
	if svc.CountBadFragments() != 0 {
		t.Fatal("bad fragments survive on disk after repair")
	}
	if a.DetectionLatency.Count() == 0 {
		t.Fatal("no detection latency observed")
	}
}

func TestWithoutAuditorRotPersists(t *testing.T) {
	k, _, svc := auditWorld(t, 3)
	// Same world, no auditor: damage stays forever.
	k.RunUntil(5 * time.Minute)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		svc.CorruptRandom(simnet.NodeID(i), rng)
	}
	k.RunUntil(60 * time.Minute)
	if len(svc.DamagedRoots()) == 0 {
		t.Fatal("control run lost its damage records")
	}
	if svc.CountBadFragments() == 0 {
		t.Fatal("control run has no bad fragments")
	}
}

func TestReputationIsolatesByzantineStores(t *testing.T) {
	k, net, svc := auditWorld(t, 5)
	liars := []simnet.NodeID{1, 4}
	for _, l := range liars {
		svc.SetByzantine(l, true)
	}
	a := audit.New(net, svc, fastCfg())
	a.Start()
	k.RunUntil(90 * time.Minute)

	suspects := a.Suspected()
	want := map[simnet.NodeID]bool{1: true, 4: true}
	for _, s := range suspects {
		if !want[s] {
			t.Fatalf("honest node %d falsely suspected (suspects %v)", s, suspects)
		}
	}
	if len(suspects) != len(liars) {
		t.Fatalf("suspects = %v, want exactly %v", suspects, liars)
	}
	// Honest nodes keep full reputation.
	for _, id := range svc.StoreNodes() {
		if want[id] {
			continue
		}
		if a.Reputation(id) < 1 {
			t.Fatalf("honest node %d lost reputation: %v", id, a.Reputation(id))
		}
	}
}

func TestDisableReputationNeverSuspects(t *testing.T) {
	k, net, svc := auditWorld(t, 5)
	for _, l := range []simnet.NodeID{1, 4} {
		svc.SetByzantine(l, true)
	}
	cfg := fastCfg()
	cfg.DisableReputation = true
	a := audit.New(net, svc, cfg)
	a.Start()
	k.RunUntil(90 * time.Minute)
	if s := a.Suspected(); len(s) != 0 {
		t.Fatalf("reputation disabled but suspects exist: %v", s)
	}
}

func TestVoteBudgetBoundsReplies(t *testing.T) {
	k, net, svc := auditWorld(t, 9)
	cfg := fastCfg()
	cfg.MaxVotesPerInterval = 2
	a := audit.New(net, svc, cfg)
	a.Start()

	// Flood one holder with polls far beyond its budget.
	root := svc.Roots()[0]
	victim := svc.HoldersOf(root)[0]
	attacker := svc.HoldersOf(root)[1]
	k.RunUntil(time.Minute + time.Second)
	before := a.Stats().VotesServed
	for i := 0; i < 100; i++ {
		net.Send(attacker, victim, audit.KindPoll, audit.ForgePoll(root, attacker, uint64(1000+i)), 48)
	}
	k.RunFor(30 * time.Second) // within the same tick
	served := a.Stats().VotesServed - before
	if served > 2 {
		t.Fatalf("vote budget 2 but served %d this interval", served)
	}
	if a.Stats().VotesSuppressed < 90 {
		t.Fatalf("suppression did not absorb the flood: %+v", a.Stats())
	}
}

func TestDisableRateLimitAmplifies(t *testing.T) {
	k, net, svc := auditWorld(t, 9)
	cfg := fastCfg()
	cfg.MaxVotesPerInterval = 2
	cfg.DisableRateLimit = true
	a := audit.New(net, svc, cfg)
	a.Start()
	root := svc.Roots()[0]
	victim := svc.HoldersOf(root)[0]
	attacker := svc.HoldersOf(root)[1]
	k.RunUntil(time.Minute + time.Second)
	before := a.Stats().VotesServed
	for i := 0; i < 100; i++ {
		net.Send(attacker, victim, audit.KindPoll, audit.ForgePoll(root, attacker, uint64(1000+i)), 48)
	}
	k.RunFor(30 * time.Second)
	if served := a.Stats().VotesServed - before; served < 90 {
		t.Fatalf("rate limit disabled but only %d votes served", served)
	}
}

func TestBackoffSuppressesRepolls(t *testing.T) {
	// Partition the world so polls go unanswered: with backoff the poll
	// volume collapses; without it, every tick polls at full rate.
	pollsWith := pollsUnderPartition(t, false)
	pollsWithout := pollsUnderPartition(t, true)
	if pollsWith*2 >= pollsWithout {
		t.Fatalf("backoff did not reduce poll volume: with=%d without=%d", pollsWith, pollsWithout)
	}
}

func pollsUnderPartition(t *testing.T, disableBackoff bool) int64 {
	t.Helper()
	k, net, svc := auditWorld(t, 11)
	cfg := fastCfg()
	cfg.DisableBackoff = disableBackoff
	a := audit.New(net, svc, cfg)
	a.Start()
	// Every node alone: all polls die at the partition boundary.
	for _, id := range svc.StoreNodes() {
		net.SetPartition(id, int(id))
	}
	k.RunUntil(4 * time.Hour)
	st := a.Stats()
	if st.Inconclusive == 0 {
		t.Fatalf("partition produced no inconclusive polls (disableBackoff=%v)", disableBackoff)
	}
	return st.Polls
}

func TestAuditTrafficIsDeterministic(t *testing.T) {
	run := func() (audit.Stats, int64, int64) {
		k, net, svc := auditWorld(t, 13)
		a := audit.New(net, svc, fastCfg())
		a.Start()
		k.RunUntil(5 * time.Minute)
		rng := rand.New(rand.NewSource(3))
		svc.CorruptRandom(2, rng)
		k.RunUntil(2 * time.Hour)
		return a.Stats(), net.KindBytes(audit.KindPoll), net.KindBytes(audit.KindVote)
	}
	s1, p1, v1 := run()
	s2, p2, v2 := run()
	if s1 != s2 || p1 != p2 || v1 != v2 {
		t.Fatalf("same seed diverged: %+v/%d/%d vs %+v/%d/%d", s1, p1, v1, s2, p2, v2)
	}
	if p1 == 0 || v1 == 0 {
		t.Fatal("no audit traffic on the wire")
	}
}
