// Package audit is a LOCKSS-style integrity auditor for the archival
// tier (PAPERS.md: "Preserving peer replicas by rate-limited sampled
// voting").
//
// Nothing below the primary tier notices when stored fragments rot or
// when a storage server starts lying — retrieval silently discards bad
// fragments, and the repair sweep only reacts to *missing* redundancy.
// The auditor closes that gap the way LOCKSS does for library
// replicas, adapted to erasure fragments:
//
//   - each storage node periodically SAMPLES a few archive roots it
//     holds fragments of, re-verifies its own copies, and POLLS a
//     random subset of co-holders over the simulated network;
//   - polled peers answer with the fragment they hold (or an honest
//     "lost it"); every returned fragment is checked against the
//     Merkle root at the poller, so votes are objectively verifiable
//     — a lying store convicts itself by the act of answering;
//   - verdicts are tallied with RATE LIMITS on both sides: pollers
//     spend a per-interval poll budget, responders a per-interval
//     vote budget (the defense that keeps the audit protocol itself
//     from becoming an amplification attack), and inconclusive polls
//     back off exponentially so a partition does not turn into a poll
//     storm;
//   - repeated bad answers cost a peer REPUTATION; disreputable peers
//     cannot contribute to a root's clean bill of health, and damning
//     verdicts trigger targeted repair through archive.Service with
//     suspects excluded from the new placement.
//
// Everything runs on the virtual clock with kernel randomness, so an
// audited run is a pure function of (seed, plan) like the rest of the
// simulation.
package audit

import (
	"math/rand"
	"sort"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/guid"
	"oceanstore/internal/obs"
	"oceanstore/internal/simnet"
)

// Wire kinds (simnet accounting tags) for audit traffic.
const (
	KindPoll = "audit-poll"
	KindVote = "audit-vote"
)

// pollMsg asks a co-holder to exhibit its fragment of a root.
type pollMsg struct {
	Root  guid.GUID
	Reply simnet.NodeID
	Rid   uint64
}

// voteMsg is the answer: the holder's fragment, or Has=false when the
// holder has lost it.  An honest "lost it" is self-incriminating
// evidence of missing redundancy, not an accusation of anyone else.
type voteMsg struct {
	Root guid.GUID
	Has  bool
	Frag archive.StoredFragment
	Rid  uint64
}

// Config tunes the auditor.  Zero values take defaults.
type Config struct {
	// Interval is the audit tick period per storage node.
	Interval time.Duration
	// SampleRoots is how many held roots a node samples per tick.
	SampleRoots int
	// PollPeers is how many co-holders are polled per sampled root.
	PollPeers int
	// MinQuorum is the reputation-weighted agreement mass a root needs
	// for a clean bill of health; below it the poll is inconclusive.
	MinQuorum float64
	// MaxPollsPerInterval caps polls each node may SEND per tick.
	MaxPollsPerInterval int
	// MaxVotesPerInterval caps votes each node may SERVE per tick —
	// the amplification defense: no matter how many polls arrive, a
	// node's audit reply traffic is bounded.
	MaxVotesPerInterval int
	// MaxRepairsPerInterval caps repairs triggered per tick, keeping a
	// mass-damage event from turning the auditor into a repair storm.
	MaxRepairsPerInterval int
	// ReputationCut is the reputation below which a peer is suspected:
	// excluded from repair placement and from health quorums.
	ReputationCut float64
	// BackoffBase and BackoffMax bound the per-(node, root) retry gap
	// after inconclusive polls.
	BackoffBase, BackoffMax time.Duration

	// Disable knobs — each switches off exactly one defense so the
	// scenario suite can demonstrate the invariant that defense holds.
	DisableRateLimit  bool // no poll/vote/repair budgets
	DisableReputation bool // every peer stays trusted forever
	DisableBackoff    bool // inconclusive polls retry at full rate
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.SampleRoots <= 0 {
		c.SampleRoots = 2
	}
	if c.PollPeers <= 0 {
		c.PollPeers = 3
	}
	if c.MinQuorum <= 0 {
		c.MinQuorum = 2
	}
	if c.MaxPollsPerInterval <= 0 {
		c.MaxPollsPerInterval = 8
	}
	if c.MaxVotesPerInterval <= 0 {
		c.MaxVotesPerInterval = 8
	}
	if c.MaxRepairsPerInterval <= 0 {
		c.MaxRepairsPerInterval = 4
	}
	if c.ReputationCut <= 0 {
		c.ReputationCut = 0.3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Minute
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 32 * time.Minute
	}
	return c
}

// Stats are the auditor's always-on counters: plain integers, readable
// by invariant checks without touching an obs registry (reading a
// registry counter would create its key and pollute deterministic
// dumps).
type Stats struct {
	Polls           int64 // poll messages sent
	PollsSuppressed int64 // polls withheld by budget or backoff
	VotesServed     int64 // vote replies sent
	VotesSuppressed int64 // polls arriving after the vote budget ran dry
	SelfChecks      int64 // local fragment re-verifications
	Agrees          int64 // votes whose fragment verified
	Disagrees       int64 // votes whose fragment failed verification
	Missing         int64 // votes answering "lost it"
	Healthy         int64 // polls concluding with a clean bill of health
	Inconclusive    int64 // polls without quorum (backoff grows)
	Detections      int64 // distinct damage events first noticed
	Repairs         int64 // successful targeted repairs
	RepairFailures  int64 // repairs attempted and failed
	RepairsDeferred int64 // damning verdicts deferred by the repair budget
}

// Auditor runs the audit protocol over one archive.Service.
type Auditor struct {
	net *simnet.Network
	svc *archive.Service
	cfg Config

	running bool
	cancel  func()

	nextRid  uint64
	inflight map[uint64]*pollState

	pollBudget map[simnet.NodeID]int
	voteBudget map[simnet.NodeID]int
	repairs    int // repairs spent this tick

	reputation map[simnet.NodeID]float64
	// backoff holds the no-poll-before deadline and current gap per
	// (origin, root) after inconclusive polls.
	backoff map[backKey]*backoffState
	// detected remembers which damage event (root, damage time) has
	// already been counted, so repeated verdicts before the repair
	// lands do not inflate Detections.
	detected map[guid.GUID]time.Duration

	stats Stats
	// DetectionLatency records virtual time from damage to detection.
	DetectionLatency obs.Histogram

	om  *auditMetrics
	otr *obs.Tracer
}

type backKey struct {
	node simnet.NodeID
	root guid.GUID
}

type backoffState struct {
	until time.Duration
	gap   time.Duration
}

// pollState tracks one open poll: the origin waiting on votes for one
// root.
type pollState struct {
	origin  simnet.NodeID
	root    guid.GUID
	sent    int
	agree   float64 // reputation-weighted agreement mass
	agrees  int
	damning int // objectively bad answers (failed verify, lost it)
	replies int
	done    bool
}

// auditMetrics mirrors Stats into an obs registry for dumps.
type auditMetrics struct {
	polls, votes, agrees, disagrees, missing *obs.Counter
	healthy, inconclusive                    *obs.Counter
	detections, repairs, repairFailed        *obs.Counter
	suppressed                               *obs.Counter
	detectLat                                *obs.Histogram
}

// New creates an auditor for the archival service.  Call Start to arm
// it.
func New(net *simnet.Network, svc *archive.Service, cfg Config) *Auditor {
	return &Auditor{
		net:        net,
		svc:        svc,
		cfg:        cfg.withDefaults(),
		inflight:   make(map[uint64]*pollState),
		pollBudget: make(map[simnet.NodeID]int),
		voteBudget: make(map[simnet.NodeID]int),
		reputation: make(map[simnet.NodeID]float64),
		backoff:    make(map[backKey]*backoffState),
		detected:   make(map[guid.GUID]time.Duration),
	}
}

// Instrument attaches an observability registry and/or tracer; metrics
// only count, they never steer the protocol.
func (a *Auditor) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	a.otr = tr
	if reg == nil {
		a.om = nil
		return
	}
	c := func(name string) *obs.Counter {
		return reg.Counter(obs.NodeWide, "audit", name)
	}
	a.om = &auditMetrics{
		polls:        c("polls"),
		votes:        c("votes"),
		agrees:       c("agrees"),
		disagrees:    c("disagrees"),
		missing:      c("missing"),
		healthy:      c("healthy"),
		inconclusive: c("inconclusive"),
		detections:   c("detections"),
		repairs:      c("repairs"),
		repairFailed: c("repair_failed"),
		suppressed:   c("suppressed"),
		detectLat:    reg.Histogram(obs.NodeWide, "audit", "detection_latency_ns"),
	}
}

// Start installs the vote handlers and arms the periodic audit tick.
func (a *Auditor) Start() {
	if a.running {
		return
	}
	a.running = true
	for _, id := range a.svc.StoreNodes() {
		node := id
		a.net.Node(node).Handle(func(m simnet.Message) { a.handle(node, m) })
	}
	a.refill()
	a.cancel = a.net.K.Every(a.cfg.Interval, a.tick)
}

// Stop disarms the tick; handlers stay installed but the auditor sends
// nothing further (in-flight tallies still resolve).
func (a *Auditor) Stop() {
	if a.cancel != nil {
		a.cancel()
		a.cancel = nil
	}
	a.running = false
}

// Stats returns a copy of the auditor's counters.
func (a *Auditor) Stats() Stats { return a.stats }

// Reputation reads a peer's current reputation (1.0 until observed
// misbehaving).
func (a *Auditor) Reputation(id simnet.NodeID) float64 {
	if r, ok := a.reputation[id]; ok {
		return r
	}
	return 1.0
}

// Suspected lists the peers whose reputation has fallen below the cut,
// in ID order — the exclusion set handed to targeted repair.
func (a *Auditor) Suspected() []simnet.NodeID {
	if a.cfg.DisableReputation {
		return nil
	}
	var out []simnet.NodeID
	for id, r := range a.reputation {
		if r < a.cfg.ReputationCut {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// suspectedSet is Suspected as a set, for repair exclusion.
func (a *Auditor) suspectedSet() map[simnet.NodeID]bool {
	s := a.Suspected()
	if len(s) == 0 {
		return nil
	}
	set := make(map[simnet.NodeID]bool, len(s))
	for _, id := range s {
		set[id] = true
	}
	return set
}

// refill resets every node's per-interval budgets.
func (a *Auditor) refill() {
	for _, id := range a.svc.StoreNodes() {
		a.pollBudget[id] = a.cfg.MaxPollsPerInterval
		a.voteBudget[id] = a.cfg.MaxVotesPerInterval
	}
	a.repairs = 0
}

// tick runs one audit round: refill budgets, then every live honest
// node samples and polls.  Node order is sorted and all randomness
// comes from the kernel, so the round is deterministic.
func (a *Auditor) tick() {
	a.refill()
	a.retryPending()
	rng := a.net.K.Rand()
	for _, id := range a.svc.StoreNodes() {
		if a.net.Node(id).Down() {
			continue
		}
		if a.svc.Byzantine(id) {
			continue // a liar audits no one; honest peers convict it
		}
		a.auditNode(id, rng)
	}
}

// auditNode runs one node's sampling round: self-check a few held
// roots, then poll co-holders about them.
func (a *Auditor) auditNode(id simnet.NodeID, rng *rand.Rand) {
	held := a.svc.RootsHeldBy(id)
	if len(held) == 0 {
		return
	}
	samples := a.cfg.SampleRoots
	if samples > len(held) {
		samples = len(held)
	}
	for _, i := range rng.Perm(len(held))[:samples] {
		root := held[i]
		// Self-check: an honest node can convict its own disk — the
		// fragments are self-verifying.  Proven-rotted copies are
		// dropped so they cannot be served or polled as if healthy.
		a.stats.SelfChecks++
		selfBad := a.svc.VerifyHeld(id, root)
		for _, idx := range selfBad {
			a.svc.DropFragment(id, root, idx)
		}
		if len(selfBad) > 0 {
			a.evidence(id, root, len(selfBad))
		}
		a.poll(id, root, rng)
	}
}

// poll sends this round's poll messages for (origin, root), honouring
// budget and backoff, and schedules the tally.
func (a *Auditor) poll(origin simnet.NodeID, root guid.GUID, rng *rand.Rand) {
	now := a.net.K.Now()
	if !a.cfg.DisableBackoff {
		if b, ok := a.backoff[backKey{origin, root}]; ok && now < b.until {
			a.stats.PollsSuppressed++
			return
		}
	}
	var peers []simnet.NodeID
	for _, nid := range a.svc.HoldersOf(root) {
		if nid != origin {
			peers = append(peers, nid)
		}
	}
	if len(peers) == 0 {
		return
	}
	want := a.cfg.PollPeers
	if want > len(peers) {
		want = len(peers)
	}
	st := &pollState{origin: origin, root: root}
	for _, i := range rng.Perm(len(peers))[:want] {
		if !a.cfg.DisableRateLimit {
			if a.pollBudget[origin] <= 0 {
				a.stats.PollsSuppressed++
				continue
			}
			a.pollBudget[origin]--
		}
		if st.sent == 0 {
			a.nextRid++
			a.inflight[a.nextRid] = st
		}
		st.sent++
		a.stats.Polls++
		if a.om != nil {
			a.om.polls.Inc()
		}
		a.net.Send(origin, peers[i], KindPoll,
			pollMsg{Root: root, Reply: origin, Rid: a.nextRid}, pollWireSize)
	}
	if st.sent == 0 {
		return
	}
	rid := a.nextRid
	// Tally after half an interval: long past the network's round-trip
	// scale, safely before the next tick touches the same root.
	a.net.K.After(a.cfg.Interval/2, func() { a.tally(rid) })
}

// handle processes audit traffic arriving at node id.
func (a *Auditor) handle(id simnet.NodeID, m simnet.Message) {
	switch p := m.Payload.(type) {
	case pollMsg:
		// Responder side: the vote budget is the amplification defense.
		// A drained budget drops the poll silently — bounded reply
		// traffic no matter how many polls arrive.
		if !a.cfg.DisableRateLimit {
			if a.voteBudget[id] <= 0 {
				a.stats.VotesSuppressed++
				if a.om != nil {
					a.om.suppressed.Inc()
				}
				return
			}
			a.voteBudget[id]--
		}
		vote := voteMsg{Root: p.Root, Rid: p.Rid}
		if sf, ok := a.svc.ServeFragment(id, p.Root); ok {
			vote.Has, vote.Frag = true, sf
		}
		a.stats.VotesServed++
		if a.om != nil {
			a.om.votes.Inc()
		}
		size := voteWireSize
		if vote.Has {
			size = vote.Frag.WireSize()
		}
		a.net.Send(id, p.Reply, KindVote, vote, size)
	case voteMsg:
		st, ok := a.inflight[p.Rid]
		if !ok || st.done {
			return
		}
		st.replies++
		switch {
		case !p.Has:
			// An honest "lost it" is hard evidence of missing
			// redundancy (wiped disk), not an accusation.
			st.damning++
			a.stats.Missing++
			if a.om != nil {
				a.om.missing.Inc()
			}
		case p.Frag.Root == st.root && p.Frag.Verify():
			st.agrees++
			st.agree += a.trustOf(m.From)
			a.stats.Agrees++
			if a.om != nil {
				a.om.agrees.Inc()
			}
			a.credit(m.From)
		default:
			// The fragment fails its own Merkle check: cryptographic
			// proof the holder is rotted or lying.  Conviction by the
			// act of answering.  The proven-bad copy is dropped at the
			// holder so one rotted fragment costs one discredit, not one
			// per poll until repair — an honest victim of rot recovers
			// its reputation; only a store that keeps producing bad
			// answers (a liar) slides to the floor.
			st.damning++
			a.stats.Disagrees++
			if a.om != nil {
				a.om.disagrees.Inc()
			}
			a.discredit(m.From)
			a.svc.DropFragment(m.From, st.root, p.Frag.Index)
		}
	}
}

// tally concludes a poll once its collection window closes.
func (a *Auditor) tally(rid uint64) {
	st, ok := a.inflight[rid]
	if !ok || st.done {
		return
	}
	st.done = true
	delete(a.inflight, rid)
	key := backKey{st.origin, st.root}
	switch {
	case st.damning > 0:
		delete(a.backoff, key)
		a.evidence(st.origin, st.root, st.damning)
	case st.agree >= a.cfg.MinQuorum:
		// Clean bill of health: enough reputation-weighted agreement.
		a.stats.Healthy++
		if a.om != nil {
			a.om.healthy.Inc()
		}
		delete(a.backoff, key)
	default:
		// Not enough trustworthy answers — unreachable peers, drained
		// vote budgets, or a root held mostly by suspects.  Back off
		// before asking again; a partition must not become a storm.
		a.stats.Inconclusive++
		if a.om != nil {
			a.om.inconclusive.Inc()
		}
		if !a.cfg.DisableBackoff {
			b := a.backoff[key]
			if b == nil {
				b = &backoffState{gap: a.cfg.BackoffBase}
				a.backoff[key] = b
			} else if b.gap < a.cfg.BackoffMax {
				b.gap *= 2
				if b.gap > a.cfg.BackoffMax {
					b.gap = a.cfg.BackoffMax
				}
			}
			b.until = a.net.K.Now() + b.gap
		}
	}
}

// evidence registers objective proof of damage to a root observed by
// origin, records detection latency for the underlying damage event,
// and triggers budget-capped targeted repair.
func (a *Auditor) evidence(origin simnet.NodeID, root guid.GUID, weight int) {
	now := a.net.K.Now()
	if since, ok := a.svc.DamagedSince(root); ok && a.detected[root] != since {
		a.detected[root] = since
		a.stats.Detections++
		a.DetectionLatency.ObserveDuration(now - since)
		if a.om != nil {
			a.om.detections.Inc()
			a.om.detectLat.ObserveDuration(now - since)
		}
		if a.otr != nil {
			a.otr.Emit(obs.Event{
				T: int64(now), Node: int(origin), Peer: -1,
				Layer: "audit", Event: "detect", ID: root.Uint64(),
				Bytes: weight,
			})
		}
	}
	a.tryRepair(int(origin), root)
}

// tryRepair attempts a budget-capped targeted repair of root.  On
// deferral (budget drained) or failure the root stays in the detected
// set, and retryPending picks it up next tick — re-detection through
// polling is NOT guaranteed, because a node that dropped its proven-bad
// copy may still hold another verifying fragment of the same root and
// answer future polls healthy while redundancy stays degraded.
func (a *Auditor) tryRepair(origin int, root guid.GUID) {
	if !a.cfg.DisableRateLimit && a.repairs >= a.cfg.MaxRepairsPerInterval {
		a.stats.RepairsDeferred++
		return
	}
	a.repairs++
	if err := a.svc.RepairRoot(root, nil, a.suspectedSet()); err != nil {
		a.stats.RepairFailures++
		if a.om != nil {
			a.om.repairFailed.Inc()
		}
		return
	}
	delete(a.detected, root)
	a.stats.Repairs++
	if a.om != nil {
		a.om.repairs.Inc()
	}
	if a.otr != nil {
		a.otr.Emit(obs.Event{
			T: int64(a.net.K.Now()), Node: origin, Peer: -1,
			Layer: "audit", Event: "repair", ID: root.Uint64(),
		})
	}
}

// retryPending drains detected-but-unrepaired damage under the fresh
// repair budget.  The detected map is exactly the set of roots whose
// damage was proven but whose repair was deferred or failed.
func (a *Auditor) retryPending() {
	if len(a.detected) == 0 {
		return
	}
	pending := make([]guid.GUID, 0, len(a.detected))
	for root := range a.detected {
		pending = append(pending, root)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].Compare(pending[j]) < 0 })
	for _, root := range pending {
		if _, still := a.svc.DamagedSince(root); !still {
			delete(a.detected, root) // repaired through some other path
			continue
		}
		a.tryRepair(-1, root)
	}
}

// trustOf weighs a peer's vote: its reputation clamped to [0, 1], or a
// flat 1 when reputation is disabled.  Suspects contribute nothing —
// a clean bill of health cannot be bought with liars' votes.
func (a *Auditor) trustOf(id simnet.NodeID) float64 {
	if a.cfg.DisableReputation {
		return 1
	}
	r := a.Reputation(id)
	if r < a.cfg.ReputationCut {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// credit slowly rebuilds reputation on verified answers.
func (a *Auditor) credit(id simnet.NodeID) {
	if a.cfg.DisableReputation {
		return
	}
	r := a.Reputation(id) + 0.05
	if r > 2 {
		r = 2
	}
	a.reputation[id] = r
}

// discredit halves reputation on proven-bad answers: a few lies are
// enough to fall below any sensible cut, while a single transient
// corruption does not banish a mostly-honest peer forever.
func (a *Auditor) discredit(id simnet.NodeID) {
	if a.cfg.DisableReputation {
		return
	}
	r := a.Reputation(id) * 0.5
	if r < 0.05 {
		r = 0.05
	}
	a.reputation[id] = r
}

// ForgePoll builds a raw poll payload — the attacker's tool in the
// amplification scenario and its tests: flooding forged polls at a
// victim is exactly the traffic the vote budget must absorb.
func ForgePoll(root guid.GUID, reply simnet.NodeID, rid uint64) any {
	return pollMsg{Root: root, Reply: reply, Rid: rid}
}

// Wire size estimates for the small audit messages (fragment votes use
// the fragment's real wire size).
const (
	pollWireSize = 48
	voteWireSize = 40
)
