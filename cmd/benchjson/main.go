// Command benchjson converts `go test -bench` text output into a JSON
// report, pairing each benchmark's current numbers with a checked-in
// baseline so performance regressions show up as a reviewable diff.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -baseline bench/BASELINE_PR2.txt -o BENCH_PR2.json
//
// The parser understands the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs — and keeps whatever units
// appear (ns/op, MB/s, B/op, allocs/op, custom ReportMetric units like
// events/s).  Benchmarks present on only one side are still reported,
// with the other side null.
//
// With -gate PCT the command becomes a regression gate: after writing
// the report it exits non-zero if any benchmark's current ns/op is
// more than PCT percent slower than its baseline, printing one line
// per offender.  -gate-allocs PCT does the same for allocs/op, so a
// zero-alloc hot path stays zero-alloc: a benchmark whose baseline is
// 0 allocs/op trips the gate the moment it allocates at all.
// Benchmarks missing from either side never trip either gate (new
// benchmarks and retired ones are not regressions).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps unit → value for one benchmark run, e.g. "ns/op" → 3512891.
type metrics map[string]float64

type report struct {
	GeneratedBy string  `json:"generated_by"`
	Baseline    string  `json:"baseline_file,omitempty"`
	Benchmarks  []entry `json:"benchmarks"`
}

type entry struct {
	Name     string  `json:"name"`
	Pkg      string  `json:"pkg"`
	Baseline metrics `json:"baseline,omitempty"`
	Current  metrics `json:"current,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op: >1 is faster.
	Speedup float64 `json:"speedup,omitempty"`
	// AllocRatio is baseline allocs/op divided by current allocs/op:
	// >1 is leaner.  Omitted unless both sides ran with -benchmem and
	// allocate at all (a 0-alloc side would make the ratio meaningless).
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// parse reads `go test -bench` output, tracking the current package from
// "pkg:" lines and collecting one metrics map per benchmark.  A repeated
// benchmark name (-count > 1) keeps the last run.
func parse(r io.Reader) (map[string]metrics, map[string]string, error) {
	results := make(map[string]metrics)
	pkgs := make(map[string]string)
	pkg := ""
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the GOMAXPROCS suffix (BenchmarkFoo-8) so reports from
		// differently sized machines key the same way.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := make(metrics)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
		if len(m) == 0 {
			continue
		}
		results[name] = m
		pkgs[name] = pkg
	}
	return results, pkgs, sc.Err()
}

// regression describes one benchmark that tripped the gate.
type regression struct {
	name           string
	base, cur, pct float64
}

// gate compares current against baseline for one unit and returns
// every benchmark more than maxPct percent worse (higher), sorted
// worst first.  Benchmarks absent from either side are skipped, as
// are benchmarks that never report the unit.  A zero baseline with a
// non-zero current is an infinite regression — a hot path that was
// allocation-free and now allocates always trips.
func gate(baseline, current map[string]metrics, unit string, maxPct float64) []regression {
	var out []regression
	for name, cur := range current {
		base, ok := baseline[name]
		if !ok {
			continue
		}
		b, bok := base[unit]
		c, cok := cur[unit]
		if !bok || !cok {
			continue
		}
		var pct float64
		switch {
		case c <= b:
			continue
		case b == 0:
			pct = math.Inf(1)
		default:
			pct = (c - b) / b * 100
		}
		if pct > maxPct {
			out = append(out, regression{name: name, base: b, cur: c, pct: pct})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pct != out[j].pct {
			return out[i].pct > out[j].pct
		}
		return out[i].name < out[j].name
	})
	return out
}

// runGate applies one unit's gate and prints offenders; returns
// whether anything tripped.
func runGate(baseline, current map[string]metrics, baselinePath, unit string, maxPct float64) bool {
	regs := gate(baseline, current, unit, maxPct)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate passed — no benchmark more than %.0f%% worse in %s than %s\n",
			maxPct, unit, baselinePath)
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) more than %.0f%% worse in %s than %s:\n",
		len(regs), maxPct, unit, baselinePath)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %-40s %12.0f -> %12.0f %s  (+%.1f%%)\n",
			r.name, r.base, r.cur, unit, r.pct)
	}
	return true
}

func parseFile(path string) (map[string]metrics, map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	baselinePath := flag.String("baseline", "", "prior `go test -bench` output to compare against")
	out := flag.String("o", "", "output file (default stdout)")
	gatePct := flag.Float64("gate", -1, "exit non-zero if any benchmark is more than `pct` percent slower than baseline")
	gateAllocs := flag.Float64("gate-allocs", -1, "exit non-zero if any benchmark's allocs/op is more than `pct` percent above baseline (0-alloc baselines trip on any allocation)")
	flag.Parse()

	current, curPkgs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	var baseline map[string]metrics
	var basePkgs map[string]string
	if *baselinePath != "" {
		baseline, basePkgs, err = parseFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	names := make(map[string]bool)
	for n := range current {
		names[n] = true
	}
	for n := range baseline {
		names[n] = true
	}
	rep := report{GeneratedBy: "make bench-json", Baseline: *baselinePath}
	for n := range names {
		e := entry{Name: n, Pkg: curPkgs[n], Baseline: baseline[n], Current: current[n]}
		if e.Pkg == "" {
			e.Pkg = basePkgs[n]
		}
		if b, c := e.Baseline["ns/op"], e.Current["ns/op"]; b > 0 && c > 0 {
			e.Speedup = float64(int(b/c*100+0.5)) / 100
		}
		if b, c := e.Baseline["allocs/op"], e.Current["allocs/op"]; b > 0 && c > 0 {
			e.AllocRatio = float64(int(b/c*100+0.5)) / 100
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		if rep.Benchmarks[i].Pkg != rep.Benchmarks[j].Pkg {
			return rep.Benchmarks[i].Pkg < rep.Benchmarks[j].Pkg
		}
		return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
	})

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	}
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *gatePct >= 0 || *gateAllocs >= 0 {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -gate/-gate-allocs require -baseline")
			os.Exit(1)
		}
		tripped := false
		if *gatePct >= 0 {
			tripped = runGate(baseline, current, *baselinePath, "ns/op", *gatePct) || tripped
		}
		if *gateAllocs >= 0 {
			tripped = runGate(baseline, current, *baselinePath, "allocs/op", *gateAllocs) || tripped
		}
		if tripped {
			os.Exit(1)
		}
	}
}
