package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: oceanstore/internal/erasure
BenchmarkRSEncode-8         	    1000	   1000000 ns/op	  67.11 MB/s	       0 B/op	       0 allocs/op
BenchmarkRSDecode-8         	     500	   2000000 ns/op
BenchmarkOnlyHere-8         	     100	    500000 ns/op
PASS
`

const sampleCurrent = `pkg: oceanstore/internal/erasure
BenchmarkRSEncode-4         	    1000	   1200000 ns/op
BenchmarkRSDecode-4         	     500	   2020000 ns/op
BenchmarkOnlyNow-4          	     100	    900000 ns/op
PASS
`

func TestParse(t *testing.T) {
	m, pkgs, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(m))
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	enc, ok := m["RSEncode"]
	if !ok {
		t.Fatalf("RSEncode missing: %v", m)
	}
	if enc["ns/op"] != 1000000 {
		t.Fatalf("RSEncode ns/op = %v", enc["ns/op"])
	}
	if enc["MB/s"] != 67.11 {
		t.Fatalf("RSEncode MB/s = %v", enc["MB/s"])
	}
	if pkgs["RSEncode"] != "oceanstore/internal/erasure" {
		t.Fatalf("pkg = %q", pkgs["RSEncode"])
	}
}

func TestGate(t *testing.T) {
	base, _, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := parse(strings.NewReader(sampleCurrent))
	if err != nil {
		t.Fatal(err)
	}

	// At 10%: RSEncode is +20% (trips); RSDecode is +1% (passes);
	// OnlyHere/OnlyNow are one-sided (never trip).
	regs := gate(base, cur, "ns/op", 10)
	if len(regs) != 1 {
		t.Fatalf("gate(10%%) = %v, want exactly RSEncode", regs)
	}
	if regs[0].name != "RSEncode" {
		t.Fatalf("offender = %q", regs[0].name)
	}
	if regs[0].pct < 19.9 || regs[0].pct > 20.1 {
		t.Fatalf("RSEncode slowdown = %.2f%%, want ~20%%", regs[0].pct)
	}

	// At 25% nothing trips.
	if regs := gate(base, cur, "ns/op", 25); len(regs) != 0 {
		t.Fatalf("gate(25%%) = %v, want empty", regs)
	}

	// At 0% both regressions trip, worst first.
	regs = gate(base, cur, "ns/op", 0)
	if len(regs) != 2 || regs[0].name != "RSEncode" || regs[1].name != "RSDecode" {
		t.Fatalf("gate(0%%) = %v, want [RSEncode RSDecode]", regs)
	}
}

const sampleMemBase = `pkg: oceanstore/internal/simnet
BenchmarkSendDeliver-8     	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
BenchmarkBatchTick-8       	  500000	      2100 ns/op	     128 B/op	       2 allocs/op
BenchmarkRouteHop-8        	 2000000	       800 ns/op	      64 B/op	       4 allocs/op
PASS
`

const sampleMemCurrent = `pkg: oceanstore/internal/simnet
BenchmarkSendDeliver-8     	 1000000	      1050 ns/op	      48 B/op	       1 allocs/op
BenchmarkBatchTick-8       	  500000	      2050 ns/op	     128 B/op	       2 allocs/op
BenchmarkRouteHop-8        	 2000000	       790 ns/op	      32 B/op	       2 allocs/op
PASS
`

func TestParseBenchmem(t *testing.T) {
	m, _, err := parse(strings.NewReader(sampleMemBase))
	if err != nil {
		t.Fatal(err)
	}
	bt := m["BatchTick"]
	if bt["allocs/op"] != 2 || bt["B/op"] != 128 {
		t.Fatalf("BatchTick mem metrics = %v", bt)
	}
	if sd := m["SendDeliver"]; sd["allocs/op"] != 0 {
		t.Fatalf("SendDeliver allocs/op = %v, want 0", sd["allocs/op"])
	}
}

func TestGateAllocs(t *testing.T) {
	base, _, err := parse(strings.NewReader(sampleMemBase))
	if err != nil {
		t.Fatal(err)
	}
	cur, _, err := parse(strings.NewReader(sampleMemCurrent))
	if err != nil {
		t.Fatal(err)
	}

	// SendDeliver went 0 -> 1 allocs/op: an infinite regression that
	// trips at any threshold.  BatchTick is flat and RouteHop improved;
	// neither trips.
	regs := gate(base, cur, "allocs/op", 50)
	if len(regs) != 1 || regs[0].name != "SendDeliver" {
		t.Fatalf("gate(allocs, 50%%) = %v, want exactly SendDeliver", regs)
	}

	// ns/op-only benchmarks (no -benchmem) never trip the alloc gate.
	plain, _, err := parse(strings.NewReader(sampleCurrent))
	if err != nil {
		t.Fatal(err)
	}
	if regs := gate(base, plain, "allocs/op", 0); len(regs) != 0 {
		t.Fatalf("gate over unit-less side = %v, want empty", regs)
	}
}
