// Command oceanstore boots a simulated OceanStore pool, runs a small
// workload through the full stack — self-certifying naming, Byzantine
// commitment, dissemination, deep archival storage, global location —
// and prints what happened.  It is the quickest way to see the system
// move end to end.
//
// Usage:
//
//	oceanstore [seed]
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"oceanstore"
)

func main() {
	seed := int64(2026)
	if len(os.Args) > 1 {
		s, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed: %v\n", err)
			os.Exit(2)
		}
		seed = s
	}
	cfg := oceanstore.DefaultConfig()
	world := oceanstore.NewWorld(seed, cfg)
	fmt.Printf("pool: %d nodes, %d domains, f=%d primary tiers, seed %d\n\n",
		cfg.Nodes, cfg.Domains, cfg.Faults, seed)

	alice := world.NewClient("alice")
	bob := world.NewClient("bob")

	// Create a shared document.
	doc, err := alice.Create("design-notes", []byte("v1: the ocean stores everything.\n"))
	check(err)
	fmt.Printf("alice created object %s (self-certifying GUID of her key + name)\n", doc.Short())

	// Share: read key to bob, write privilege via a re-certified ACL.
	check(alice.GrantRead(doc, bob))
	check(world.SetACL(alice, doc, &oceanstore.ACL{
		Entries: []oceanstore.ACLEntry{{PubKey: bob.Signer.Public(), Priv: oceanstore.PrivWrite}},
	}, 2))
	fmt.Println("alice granted bob the read key and certified him as a writer")

	// Promiscuous caching: float replicas near the edge.
	for _, n := range []int{10, 20, 30} {
		check(world.AddReplica(doc, n))
	}
	fmt.Println("floating replicas created on nodes 10, 20, 30")

	// Both write concurrently.
	as := alice.NewSession(oceanstore.ACID)
	bs := bob.NewSession(oceanstore.ACID)
	_, err = as.Append(doc, []byte("alice: use erasure codes for the archive.\n"))
	check(err)
	_, err = bs.Append(doc, []byte("bob: route updates through the primary tier.\n"))
	check(err)
	fmt.Println("\nalice and bob submitted concurrent updates...")
	world.Run(time.Minute)

	data, err := as.Read(doc)
	check(err)
	fmt.Printf("\ncommitted contents after Byzantine serialisation:\n%s", data)

	// Locate the document from a random corner of the network.
	holder, err := world.Locate(40, doc)
	check(err)
	fmt.Printf("\nnode 40 located a replica on node %d via the Plaxton mesh\n", holder)

	// Show the archival side effect.
	if ring, ok := world.Pool.Ring(doc); ok {
		fmt.Printf("commits produced %d deep-archival snapshots (erasure-coded, self-verifying)\n",
			len(ring.ArchiveRoots))
	}
	st := world.Pool.Net.Stats()
	fmt.Printf("\nsimulated traffic: %d messages, %d bytes across %d protocol kinds\n",
		st.MessagesSent, st.BytesSent, len(st.ByKind))
	fmt.Printf("virtual time elapsed: %v\n", world.Now())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
