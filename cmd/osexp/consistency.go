package main

import (
	"fmt"
	"io"
	"time"

	"oceanstore/internal/byz"
	"oceanstore/internal/guid"
	"oceanstore/internal/par"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// tier builds a primary tier of n replicas plus one client at uniform
// 100 ms links — the paper's §4.4.5 setting.
func tier(n, f int, seed int64) (*sim.Kernel, *simnet.Network, *byz.Group, simnet.NodeID) {
	k := sim.NewKernel(seed)
	net := simnet.New(k, simnet.Config{BaseLatency: 100 * time.Millisecond})
	var nodes []simnet.NodeID
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.AddNode(0, 0).ID)
	}
	client := net.AddNode(0, 0).ID
	g, err := byz.NewGroup(net, nodes, f)
	if err != nil {
		panic(err)
	}
	return k, net, g, client
}

// measureCost runs one update of u bytes through an (m,n) tier and
// returns total bytes sent.
func measureCost(m, n, u int, seed int64) int64 {
	k, net, g, client := tier(n, m, seed)
	net.ResetStats()
	done := false
	g.Submit(client, byz.Request{ID: guid.FromData([]byte(fmt.Sprint(u, seed))), Payload: "u", Size: u},
		func(byz.Result) { done = true })
	k.RunFor(20 * time.Second)
	if !done {
		panic(fmt.Sprintf("fig6: update u=%d n=%d did not commit", u, n))
	}
	return net.Stats().BytesSent
}

// analyticCost is the paper's Figure 6 model b = c1·n² + (u+c2)·n + c3,
// with our protocol's constants: prepares and commits are each
// (n-1)(n-1) CSmall messages, the pre-prepare ships u+CHeader to n-1
// replicas, the client sends u+CHeader once plus n-1 digests, and n
// replicas reply.
func analyticCost(n, u int) float64 {
	nn := float64(n)
	uu := float64(u)
	prepares := (nn - 1) * (nn - 1) * byz.CSmall * 2  // prepare + commit
	preprepare := (uu + byz.CHeader) * (nn - 1)       // primary fan-out
	request := (uu + byz.CHeader) + (nn-1)*byz.CSmall // client -> tier
	replies := nn * byz.CReply                        // tier -> client
	return prepares + preprepare + request + replies
}

// runFig6 prints the Figure 6 series: normalized cost (bytes / (u·n))
// for the paper's three tiers, both from the analytic model and as
// measured from the simulated protocol.
func runFig6(w io.Writer, seed int64, _ *obsink) {
	sizes := []int{100, 400, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 100 << 10, 256 << 10, 1 << 20, 10 << 20}
	tiers := [][2]int{{2, 7}, {3, 10}, {4, 13}}
	// Every (size, tier) cell is an independent simulation with its own
	// kernel; measure the whole grid on the fork-join pool and print in
	// grid order afterwards, so the table is identical at any core count.
	measured := par.Map(len(sizes)*len(tiers), 1, func(i int) int64 {
		u, t := sizes[i/len(tiers)], tiers[i%len(tiers)]
		return measureCost(t[0], t[1], u, seed)
	})
	fmt.Fprintf(w, "%-10s", "u(bytes)")
	for _, t := range tiers {
		fmt.Fprintf(w, " | m=%d,n=%-2d analytic measured", t[0], t[1])
	}
	fmt.Fprintln(w)
	for i, u := range sizes {
		fmt.Fprintf(w, "%-10d", u)
		for j, t := range tiers {
			n := t[1]
			an := analyticCost(n, u) / float64(u*n)
			me := float64(measured[i*len(tiers)+j]) / float64(u*n)
			fmt.Fprintf(w, " |       %8.3f %8.3f", an, me)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\npaper check (m=4, n=13): normalized cost ~2 near 4kB, approaching 1 by ~100kB+")
	checks := []int{4 << 10, 100 << 10}
	checked := par.Map(len(checks), 1, func(i int) int64 {
		return measureCost(4, 13, checks[i], seed)
	})
	for i, u := range checks {
		fmt.Fprintf(w, "  u=%-8d measured normalized cost = %.3f\n", u, float64(checked[i])/float64(u*13))
	}
}

// runLatency prints E2: commit latency for the paper's tiers under
// uniform 100 ms message latency; the paper estimates <1 s.
func runLatency(w io.Writer, seed int64, ob *obsink) {
	fmt.Fprintf(w, "%-10s %-8s %-12s %s\n", "tier", "faults", "latency", "under 1s?")
	for _, t := range [][2]int{{2, 7}, {3, 10}, {4, 13}} {
		m, n := t[0], t[1]
		k, net, g, client := tier(n, m, seed)
		// The three tiers run serially, so they can share one sink: the
		// byz/simnet counters aggregate across tiers deterministically.
		net.Instrument(ob.registry(), ob.tracer())
		g.Instrument(ob.registry(), ob.tracer())
		var lat time.Duration
		g.Submit(client, byz.Request{ID: guid.FromData([]byte("lat")), Payload: "u", Size: 4096},
			func(r byz.Result) { lat = r.Latency })
		k.RunFor(20 * time.Second)
		fmt.Fprintf(w, "n=%-8d %-8d %-12v %v\n", n, m, lat, lat < time.Second)
	}
	fmt.Fprintln(w, "\npaper: \"six phases of messages ... approximate latency per update of less than a second\"")
}
