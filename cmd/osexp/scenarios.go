package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"oceanstore/internal/scenario"
)

// scenarioOpts are the scenarios experiment's knobs; the initializers
// are the defaults and scenariosFlagSet echoes them, mirroring soak.
var scenarioOpts = struct {
	only      string
	armedOnly bool
	interval  time.Duration
}{}

// scenariosFlagSet builds the flag set parsed from the arguments after
// `scenarios [seed]` on the command line.
func scenariosFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("scenarios", flag.ExitOnError)
	o := &scenarioOpts
	fs.StringVar(&o.only, "only", o.only, "run a single named scenario (default: whole catalogue)")
	fs.BoolVar(&o.armedOnly, "armedonly", o.armedOnly, "skip the paired defense-off runs")
	fs.DurationVar(&o.interval, "interval", o.interval, "override the audit cadence (0 = suite default, 1m)")
	return fs
}

// runScenarios executes the adversarial catalogue: every scenario runs
// with its defense armed (invariants must hold) and — unless
// -armedonly — again with exactly that defense switched off
// (invariants must break, or the defense is dead weight).  The final
// "invariant failures: N" line is the smoke target's pass/fail signal.
func runScenarios(w io.Writer, seed int64, ob *obsink) {
	o := scenarioOpts
	cat := scenario.Catalogue()
	if o.only != "" {
		sc, ok := scenario.Find(o.only)
		if !ok {
			fmt.Fprintf(w, "unknown scenario %q; catalogue:\n", o.only)
			for _, s := range cat {
				fmt.Fprintf(w, "  %-22s %s\n", s.Name, s.Desc)
			}
			fmt.Fprintln(w, "invariant failures: 1")
			return
		}
		cat = []scenario.Scenario{sc}
	}
	failures := 0
	for _, sc := range cat {
		// Only the armed run feeds the observability sinks: it is the
		// shipping configuration, and a paired disarmed run would merge a
		// second world's counters into the same registry.
		armed := sc.Run(scenario.Options{
			Seed: seed, Defense: true, AuditInterval: o.interval,
			Reg: ob.registry(), Tracer: ob.tracer(),
		})
		verdict := "PASS"
		if !armed.Pass() {
			verdict = "FAIL"
			failures += len(armed.Violations)
		}
		fmt.Fprintf(w, "scenario %-22s armed    %s", sc.Name, verdict)
		for _, m := range armed.Metrics {
			fmt.Fprintf(w, "  %s=%d", m.Name, m.Value)
		}
		fmt.Fprintln(w)
		for _, v := range armed.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		if o.armedOnly {
			continue
		}
		off := sc.Run(scenario.Options{Seed: seed, Defense: false, AuditInterval: o.interval})
		if off.Pass() {
			// A defense whose absence changes nothing defends nothing.
			failures++
			fmt.Fprintf(w, "scenario %-22s disarmed PASS  <- defense %q is not load-bearing\n",
				sc.Name, sc.Defense)
		} else {
			fmt.Fprintf(w, "scenario %-22s disarmed broke as expected (%d violations; defense: %s)\n",
				sc.Name, len(off.Violations), sc.Defense)
		}
	}
	fmt.Fprintf(w, "invariant failures: %d\n", failures)
}
