package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"oceanstore/internal/core"
	"oceanstore/internal/obs"
	"oceanstore/internal/workload"
)

// soakOpts are the soak experiment's knobs.  The struct initializers
// are the defaults; soakFlagSet echoes them so `osexp all` (which
// never parses soak flags) and `osexp soak` agree.  Defaults are sized
// so the full experiment suite stays fast; a heavy run looks like
//
//	osexp -metrics soak.txt soak 1 -nodes 10000 -ops 1000000
var soakOpts = struct {
	nodes       int
	ops         int
	clients     int
	objects     int
	secondaries int
	write       float64
	create      float64
	zipf        float64
	size        int
	think       time.Duration
	open        bool
	arrival     time.Duration
	maxInfl     int
	churn       time.Duration
	downFor     time.Duration
	grow        int
	growAt      time.Duration
	shards      int
	backend     string
	storeDir    string
	scrub       time.Duration
	flush       time.Duration
	introspect  bool
	iepoch      time.Duration
	readSvc     time.Duration
	flash       time.Duration
	flashFor    time.Duration
	flashMass   float64
	flashObjs   int
	diurnal     time.Duration
	nightRate   float64
	hotRotate   time.Duration
}{
	nodes:     256,
	ops:       4000,
	write:     0.3,
	create:    0.01,
	zipf:      1.1,
	size:      256,
	think:     200 * time.Millisecond,
	arrival:   50 * time.Millisecond,
	churn:     time.Minute,
	downFor:   20 * time.Second,
	backend:   "mem",
	scrub:     30 * time.Second,
	flashFor:  2 * time.Minute,
	flashMass: 0.9,
	flashObjs: 4,
	nightRate: 0.25,
}

// soakFlagSet builds the flag set parsed from the arguments after
// `soak [seed]` on the command line.
func soakFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	o := &soakOpts
	fs.IntVar(&o.nodes, "nodes", o.nodes, "server count")
	fs.IntVar(&o.ops, "ops", o.ops, "total operation budget")
	fs.IntVar(&o.clients, "clients", o.clients, "virtual clients (0 = scale with nodes)")
	fs.IntVar(&o.objects, "objects", o.objects, "pre-created objects (0 = scale with nodes)")
	fs.IntVar(&o.secondaries, "secondaries", o.secondaries, "static floating replicas per object (0 = default 4)")
	fs.Float64Var(&o.write, "write", o.write, "write fraction of the mix")
	fs.Float64Var(&o.create, "create", o.create, "create fraction of the mix")
	fs.Float64Var(&o.zipf, "zipf", o.zipf, "Zipf skew for object popularity")
	fs.IntVar(&o.size, "size", o.size, "mean write payload bytes (exponential)")
	fs.DurationVar(&o.think, "think", o.think, "mean per-client think time (closed loop)")
	fs.BoolVar(&o.open, "openloop", o.open, "open-loop arrivals instead of closed-loop")
	fs.DurationVar(&o.arrival, "arrival", o.arrival, "mean interarrival (open loop)")
	fs.IntVar(&o.maxInfl, "maxinflight", o.maxInfl, "backpressure cap on unresolved writes (0 = scale with nodes)")
	fs.DurationVar(&o.churn, "churn", o.churn, "node bounce period (0 disables churn)")
	fs.DurationVar(&o.downFor, "downfor", o.downFor, "how long a bounced node stays down")
	fs.IntVar(&o.grow, "grow", o.grow, "nodes to add mid-run (0 disables growth)")
	fs.DurationVar(&o.growAt, "growat", o.growAt, "virtual time of the growth burst")
	fs.IntVar(&o.shards, "shards", o.shards, "kernel event-queue shards (0 = scale with nodes; output is identical at any value)")
	fs.StringVar(&o.backend, "backend", o.backend, "fragment store backend: mem or disk (output is identical either way)")
	fs.StringVar(&o.storeDir, "storedir", o.storeDir, "volume directory for -backend disk (empty = fresh temp dir, removed after)")
	fs.DurationVar(&o.scrub, "scrub", o.scrub, "archival scrub/repair scheduler tick (0 disables maintenance)")
	fs.DurationVar(&o.flush, "flush", o.flush, "store fsync group-commit period (0 = fsync per batch)")
	fs.BoolVar(&o.introspect, "introspect", o.introspect, "arm introspective replica management (promote/demote floating replicas on read heat)")
	fs.DurationVar(&o.iepoch, "iepoch", o.iepoch, "introspection controller epoch (0 = default 10s); shorter reacts faster")
	fs.DurationVar(&o.readSvc, "readsvc", o.readSvc, "modeled read service time per request (0 = auto: 2ms when -introspect or -flash, else synchronous reads; negative forces synchronous)")
	fs.DurationVar(&o.flash, "flash", o.flash, "virtual time a flash crowd starts (0 disables)")
	fs.DurationVar(&o.flashFor, "flashfor", o.flashFor, "flash crowd duration")
	fs.Float64Var(&o.flashMass, "flashmass", o.flashMass, "fraction of draws the flash redirects onto the hot set")
	fs.IntVar(&o.flashObjs, "flashobjs", o.flashObjs, "hot-set size the flash concentrates onto")
	fs.DurationVar(&o.diurnal, "diurnal", o.diurnal, "diurnal period for arrival-intensity modulation (0 disables)")
	fs.Float64Var(&o.nightRate, "nightrate", o.nightRate, "night-time arrival intensity relative to day")
	fs.DurationVar(&o.hotRotate, "hotrotate", o.hotRotate, "hot-spot rotation period for the Zipf mapping (0 disables)")
	return fs
}

// runSoak drives the closed/open-loop traffic engine over a soak
// world: a meshless batch-delivery pool under churn, with reads,
// full-path writes, and object creates drawn from a Zipf mix.
func runSoak(w io.Writer, seed int64, ob *obsink) {
	o := soakOpts
	cfg := core.DefaultSoakConfig(o.nodes)
	if o.clients > 0 {
		cfg.Clients = o.clients
	}
	if o.objects > 0 {
		cfg.Objects = o.objects
	}
	if o.secondaries > 0 {
		cfg.Secondaries = o.secondaries
	}
	if o.maxInfl > 0 {
		cfg.MaxInFlight = o.maxInfl
	}
	if o.shards > 0 {
		cfg.Shards = o.shards
	}
	cfg.Backend = o.backend
	cfg.ScrubInterval = o.scrub
	cfg.FlushInterval = o.flush
	cfg.Introspect = o.introspect
	if o.iepoch > 0 {
		cfg.IntrospectEpoch = o.iepoch
	}
	switch {
	case o.readSvc > 0:
		cfg.ReadService = o.readSvc
	case o.readSvc == 0 && (o.introspect || o.flash > 0):
		// Auto: the flash-crowd/introspection story needs reads with
		// real service time, or there is no tail to bend.
		cfg.ReadService = 2 * time.Millisecond
	}
	var shape workload.Shape
	if o.diurnal > 0 {
		shape.DiurnalPeriod = o.diurnal
		shape.DiurnalNightRate = o.nightRate
	}
	if o.hotRotate > 0 {
		shape.RotateEvery = o.hotRotate
	}
	if o.flash > 0 {
		shape.FlashAt = o.flash
		shape.FlashFor = o.flashFor
		shape.FlashMass = o.flashMass
		shape.FlashObjects = o.flashObjs
	}
	if o.backend == "disk" {
		cfg.StoreDir = o.storeDir
		if cfg.StoreDir == "" {
			dir, err := os.MkdirTemp("", "osexp-blob-")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			cfg.StoreDir = dir
		}
	}
	world, err := core.NewSoakWorld(seed, cfg)
	if err != nil {
		panic(err)
	}
	defer world.Close()
	world.Instrument(ob.registry(), ob.tracer())
	eng := workload.NewEngine(world.Pool.K, workload.EngineConfig{
		Clients:       cfg.Clients,
		Ops:           o.ops,
		Mix:           workload.Mix{WriteFrac: o.write, CreateFrac: o.create},
		Objects:       cfg.Objects,
		ZipfS:         o.zipf,
		MeanWriteSize: o.size,
		ClosedLoop:    !o.open,
		MeanThink:     o.think,
		MeanArrival:   o.arrival,
		RetryBackoff:  time.Second,
		Shape:         shape,
	}, world)
	eng.Instrument(ob.registry())
	if o.churn > 0 {
		world.StartChurn(o.churn, o.downFor)
	}
	if o.grow > 0 {
		world.GrowAt(o.growAt, o.grow)
	}
	eng.Start()
	world.Pool.K.RunWhile(func() bool { return !eng.Done() })

	st := eng.Stats()
	loop := "closed"
	if o.open {
		loop = "open"
	}
	fmt.Fprintf(w, "soak: %d nodes, %d clients, %d objects -> %d, %s loop over %v virtual time\n",
		world.Pool.Net.Len(), cfg.Clients, cfg.Objects, st.Confirmed, loop, world.Pool.K.Now())
	fmt.Fprintf(w, "ops: %d issued, %d ok, %d failed; backpressure: %d shed, %d retries; %d creates\n",
		st.Issued, st.OK, st.Failed, st.Shed, st.Retries, st.Creates)
	lat := eng.Latency()
	fmt.Fprintf(w, "latency: p50 %v  p99 %v  mean %v\n",
		time.Duration(lat.Quantile(0.5)), time.Duration(lat.Quantile(0.99)),
		time.Duration(lat.Mean()))
	rl := eng.ReadLatency()
	fmt.Fprintf(w, "read latency: p50 %v  p99 %v  p999 %v  mean %v (%d reads)\n",
		time.Duration(rl.Quantile(0.5)), time.Duration(rl.Quantile(0.99)),
		time.Duration(rl.Quantile(0.999)), time.Duration(rl.Mean()), rl.Count())
	ns := world.Pool.Net.Stats()
	fmt.Fprintf(w, "traffic: %d msgs, %.1f MB; drops: %d (crash %d, partition %d, loss %d)\n",
		ns.MessagesSent, float64(ns.BytesSent)/1e6, ns.MessagesDropped,
		ns.DroppedByCrash, ns.DroppedByPartition, ns.DroppedByLoss)
	committed := 0
	for _, obj := range world.Objects() {
		if ring, ok := world.Pool.Ring(obj); ok {
			n, _ := ring.PrimaryState().Log.Counts()
			committed += n
		}
	}
	fmt.Fprintf(w, "committed updates across objects: %d\n", committed)
	if ctrl := world.Controller(); ctrl != nil {
		// Controller counters and the replica trajectory are pure
		// functions of the trajectory, so this line rides the
		// determinism comparisons.
		cs := ctrl.Stats()
		traj := ctrl.Trajectory()
		fmt.Fprintf(w, "introspect: %d epochs, %d promotes, %d demotes, %d denied; replicas now %d (epoch min %d max %d); read wire %.1f MB\n",
			cs.Epochs, cs.Promotes, cs.Demotes, cs.Denied,
			ctrl.TierSize(), traj.Min(), traj.Max(),
			float64(world.ReadWireBytes())/1e6)
	}
	if sc := world.Scheduler(); sc != nil {
		// Scheduler counters are pure functions of the trajectory, so
		// this line rides the determinism comparisons like the rest of
		// the report — and must match across mem and disk backends.
		ss := sc.Stats()
		fmt.Fprintf(w, "archival maintenance: scrubbed %d frags (%d bad, %d missing, %.1f MB reread, %d passes); repairs %d ok %d failed %d deferred\n",
			ss.ScrubbedFrags, ss.ScrubBad, ss.ScrubMissing, float64(ss.ScrubBytes)/1e6,
			ss.ScrubPasses, ss.Repairs, ss.RepairFailed, ss.RepairsDeferred)
	}
	if st.InFlight != 0 {
		fmt.Fprintf(w, "WARNING: %d operations still in flight after drain\n", st.InFlight)
	}
	// Memory facts go to stderr, not the report: the report rides the
	// determinism comparisons and RSS/GC numbers are machine noise.
	obs.SampleMem().Report(os.Stderr)
	// So does the real-I/O rail: its numbers are deterministic too, but
	// they only exist on the disk backend, and the mem-vs-disk ablation
	// compares stdout byte for byte.
	if bs, vols := world.BlobStats(); vols > 0 {
		fmt.Fprintf(os.Stderr, "blobstore: %d volumes; %.1f MB written, %.1f MB read, %d puts, %d gets, %d drops, %d fsyncs, %d compactions\n",
			vols, float64(bs.BytesWritten)/1e6, float64(bs.BytesRead)/1e6,
			bs.Puts, bs.Gets, bs.Drops, bs.Syncs, bs.Compactions)
	}
}
