package main

import (
	"fmt"
	"io"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/core"
	"oceanstore/internal/crypt"
	"oceanstore/internal/dtree"
	"oceanstore/internal/guid"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// runTwoTier shows §4.3's combined mechanism on a live pool: the
// fraction of queries the fast probabilistic tier satisfies as filter
// depth grows, and the global mesh catching everything else.
func runTwoTier(w io.Writer, seed int64, _ *obsink) {
	fmt.Fprintf(w, "%-6s %-14s %-14s %-14s\n", "depth", "probabilistic", "global", "state/node")
	for _, depth := range []int{1, 2, 3, 4} {
		cfg := core.DefaultPoolConfig()
		cfg.Nodes = 64
		cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
		p := core.NewPool(seed, cfg)
		ttCfg := core.DefaultTwoTierConfig()
		ttCfg.Depth = depth
		tt := p.EnableTwoTier(ttCfg)

		owner := p.NewClient(63, crypt.NewSigner(p.K.Rand()))
		var objs []guid.GUID
		for i := 0; i < 8; i++ {
			obj, err := owner.Create(fmt.Sprintf("obj-%d", i), []byte("x"))
			if err != nil {
				panic(err)
			}
			objs = append(objs, obj)
		}
		prob, glob := 0, 0
		for q := 0; q < 300; q++ {
			from := simnet.NodeID(p.K.Rand().Intn(62))
			obj := objs[p.K.Rand().Intn(len(objs))]
			res, err := tt.Locate(from, obj)
			if err != nil {
				panic(err)
			}
			if res.Probabilistic {
				prob++
			} else {
				glob++
			}
		}
		fmt.Fprintf(w, "%-6d %3d/300 %8s %3d/300 %8s %6d B\n", depth, prob, "", glob, "", tt.ProbabilisticStateBytes(5))
	}
	fmt.Fprintln(w, "\npaper (§4.3): a fast probabilistic algorithm finds nearby objects; misses fall")
	fmt.Fprintln(w, "through to the slower, deterministic global algorithm")
}

// runFanout is the dissemination-tree ablation: fanout trades tree
// depth (delivery latency at the leaves) against per-node send load.
func runFanout(w io.Writer, seed int64, _ *obsink) {
	fmt.Fprintf(w, "%-8s %-10s %-16s %-14s\n", "fanout", "max depth", "full-tree time", "root sends")
	for _, fanout := range []int{2, 4, 8, 16} {
		k := sim.NewKernel(seed)
		net := simnet.New(k, simnet.Config{BaseLatency: 20 * time.Millisecond, LatencyPerUnit: time.Millisecond})
		net.AddRandomNodes(200, 50, 1)
		tr := dtree.New(net, 0, fanout)
		for i := 1; i < 200; i++ {
			if err := tr.Join(simnet.NodeID(i)); err != nil {
				panic(err)
			}
		}
		start := k.Now()
		var last time.Duration
		reached := 0
		tr.OnDeliver(func(n simnet.NodeID, d dtree.Delivery) {
			reached++
			last = k.Now() - start
		})
		net.ResetStats()
		tr.Push("u", 4096)
		k.RunFor(time.Minute)
		maxDepth := 0
		for i := 0; i < 200; i++ {
			if d := tr.Depth(simnet.NodeID(i)); d > maxDepth {
				maxDepth = d
			}
		}
		rootSends := 0
		for i := 1; i < 200; i++ {
			if pnt, _ := tr.Parent(simnet.NodeID(i)); pnt == 0 {
				rootSends++
			}
		}
		fmt.Fprintf(w, "%-8d %-10d %-16v %-14d\n", fanout, maxDepth, last, rootSends)
		if reached != 200 {
			panic("incomplete dissemination")
		}
	}
	fmt.Fprintln(w, "\nablation: higher fanout flattens the tree (faster leaves) but concentrates")
	fmt.Fprintln(w, "send load at inner nodes — the tradeoff dissemination trees balance (§4.4.3)")
}
