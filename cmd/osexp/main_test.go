package main

import (
	"bytes"
	"runtime"
	"testing"
)

// TestSeedOutputsProcsInvariant: the -seeds fan-out must produce the
// same per-seed bytes whether the sweep runs serially or on the pool.
// Uses cheap experiments so the test stays fast; each run function
// writes only to its own buffer, so outputs can never interleave.
func TestSeedOutputsProcsInvariant(t *testing.T) {
	for _, e := range experiments {
		switch e.name {
		case "migration", "prefetch", "latency":
		default:
			continue
		}
		e := e
		t.Run(e.name, func(t *testing.T) {
			run := func(procs int) [][]byte {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				outs, _ := seedOutputs(e, 3, 4, nil)
				return outs
			}
			serial := run(1)
			parallel := run(4)
			for i := range serial {
				if !bytes.Equal(serial[i], parallel[i]) {
					t.Fatalf("seed %d: parallel output differs from serial", 3+i)
				}
				if len(serial[i]) == 0 {
					t.Fatalf("seed %d: empty output", 3+i)
				}
			}
		})
	}
}

// TestSingleSeedMatchesSweepMember: seed s run alone must equal the
// s-th section of a multi-seed sweep — the sweep is a pure fan-out,
// not a different experiment.
func TestSingleSeedMatchesSweepMember(t *testing.T) {
	var e experiment
	for _, x := range experiments {
		if x.name == "migration" {
			e = x
		}
	}
	alone, _ := seedOutputs(e, 5, 1, nil)
	swept, _ := seedOutputs(e, 4, 3, nil)
	if !bytes.Equal(alone[0], swept[1]) {
		t.Fatal("seed 5 alone differs from seed 5 inside a [4..6] sweep")
	}
}

// obsDump renders a seed sweep's observability exactly as osexp
// -metrics/-trace would write it, into one byte slice per stream.
func obsDump(t *testing.T, e experiment, base int64, nSeeds int) (metrics, trace []byte) {
	t.Helper()
	var mbuf, tbuf bytes.Buffer
	oo := &obsOut{metricsW: &mbuf, traceW: &tbuf}
	outs, sinks := seedOutputs(e, base, nSeeds, oo.mk)
	for i := range outs {
		if err := oo.flush(e.name, base+int64(i), sinks[i]); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	return mbuf.Bytes(), tbuf.Bytes()
}

// TestObsDumpProcsInvariant is the acceptance gate for the
// observability layer: with a fixed seed, the metrics dump and the
// JSONL trace must be byte-identical at GOMAXPROCS=1 and 4, including
// for the fragments experiment whose per-cell simulators run
// concurrently on the fork-join pool and merge their sub-sinks.
func TestObsDumpProcsInvariant(t *testing.T) {
	for _, name := range []string{"latency", "fragments"} {
		var e experiment
		for _, x := range experiments {
			if x.name == name {
				e = x
			}
		}
		t.Run(name, func(t *testing.T) {
			run := func(procs int) ([]byte, []byte) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				return obsDump(t, e, 3, 2)
			}
			m1, t1 := run(1)
			m4, t4 := run(4)
			if len(m1) == 0 {
				t.Fatal("empty metrics dump")
			}
			if len(t1) == 0 {
				t.Fatal("empty trace dump")
			}
			if !bytes.Equal(m1, m4) {
				t.Fatal("metrics dump differs between GOMAXPROCS=1 and 4")
			}
			if !bytes.Equal(t1, t4) {
				t.Fatal("trace dump differs between GOMAXPROCS=1 and 4")
			}
		})
	}
}

// TestInstrumentationInert: attaching observability must not change an
// experiment's stdout output — collection is counting only, off the
// decision path, drawing no randomness.
func TestInstrumentationInert(t *testing.T) {
	var e experiment
	for _, x := range experiments {
		if x.name == "latency" {
			e = x
		}
	}
	bare, _ := seedOutputs(e, 7, 1, nil)
	oo := &obsOut{metricsW: &bytes.Buffer{}, traceW: &bytes.Buffer{}}
	instrumented, _ := seedOutputs(e, 7, 1, oo.mk)
	if !bytes.Equal(bare[0], instrumented[0]) {
		t.Fatal("instrumented run produced different experiment output")
	}
}
