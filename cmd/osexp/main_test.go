package main

import (
	"bytes"
	"runtime"
	"testing"
)

// TestSeedOutputsProcsInvariant: the -seeds fan-out must produce the
// same per-seed bytes whether the sweep runs serially or on the pool.
// Uses cheap experiments so the test stays fast; each run function
// writes only to its own buffer, so outputs can never interleave.
func TestSeedOutputsProcsInvariant(t *testing.T) {
	for _, e := range experiments {
		switch e.name {
		case "migration", "prefetch", "latency":
		default:
			continue
		}
		e := e
		t.Run(e.name, func(t *testing.T) {
			run := func(procs int) [][]byte {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				return seedOutputs(e, 3, 4)
			}
			serial := run(1)
			parallel := run(4)
			for i := range serial {
				if !bytes.Equal(serial[i], parallel[i]) {
					t.Fatalf("seed %d: parallel output differs from serial", 3+i)
				}
				if len(serial[i]) == 0 {
					t.Fatalf("seed %d: empty output", 3+i)
				}
			}
		})
	}
}

// TestSingleSeedMatchesSweepMember: seed s run alone must equal the
// s-th section of a multi-seed sweep — the sweep is a pure fan-out,
// not a different experiment.
func TestSingleSeedMatchesSweepMember(t *testing.T) {
	var e experiment
	for _, x := range experiments {
		if x.name == "migration" {
			e = x
		}
	}
	alone := seedOutputs(e, 5, 1)
	swept := seedOutputs(e, 4, 3)
	if !bytes.Equal(alone[0], swept[1]) {
		t.Fatal("seed 5 alone differs from seed 5 inside a [4..6] sweep")
	}
}
