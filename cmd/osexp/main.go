// Command osexp regenerates every quantitative figure and claim in the
// OceanStore paper (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	osexp <experiment> [seed]
//
// where <experiment> is one of: fig6, latency, reliability, bloom,
// plaxton, fragments, prefetch, ciphertext, byzfaults, replicamgmt,
// updatepath, or "all".
package main

import (
	"fmt"
	"os"
	"strconv"
)

type experiment struct {
	name string
	desc string
	run  func(seed int64)
}

var experiments = []experiment{
	{"fig6", "E1: Figure 6 — normalized update cost vs update size (analytic + measured)", runFig6},
	{"latency", "E2: §4.4.5 — commit latency with 100ms WAN messages", runLatency},
	{"reliability", "E3: §4.5 — fragment availability vs whole-object replication", runReliability},
	{"bloom", "E4: §4.3.2 — attenuated Bloom filter location success and stretch", runBloom},
	{"plaxton", "E5: §4.3.3 — mesh routing hops, locate locality, salted roots", runPlaxton},
	{"fragments", "E6: §5 — archival reconstruction vs extra fragment requests", runFragments},
	{"prefetch", "E7: §5 — introspective prefetcher vs noise", runPrefetch},
	{"ciphertext", "E8: §4.4.2 — ciphertext operations and predicate overhead", runCiphertext},
	{"byzfaults", "E9: §4.4.3 — Byzantine tier under crash and lying faults", runByzFaults},
	{"replicamgmt", "E10: §4.7.2 — introspective replica management under load", runReplicaMgmt},
	{"updatepath", "E11: Figure 5 — end-to-end update path timeline", runUpdatePath},
	{"twotier", "§4.3 — combined probabilistic + global location on a pool", runTwoTier},
	{"fanout", "ablation — dissemination tree fanout vs depth and load", runFanout},
	{"soak", "steady state — Zipf mix over a maintained pool with churn", runSoak},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	seed := int64(1)
	if len(os.Args) > 2 {
		s, err := strconv.ParseInt(os.Args[2], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", os.Args[2], err)
			os.Exit(2)
		}
		seed = s
	}
	name := os.Args[1]
	if name == "all" {
		for _, e := range experiments {
			fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
			e.run(seed)
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
			e.run(seed)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: osexp <experiment> [seed]")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all          run everything")
}
