// Command osexp regenerates every quantitative figure and claim in the
// OceanStore paper (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	osexp [-seeds N] [-metrics FILE] [-trace FILE] <experiment> [seed]
//
// where <experiment> is one of: fig6, latency, reliability, bloom,
// plaxton, fragments, prefetch, ciphertext, byzfaults, replicamgmt,
// updatepath, or "all".
//
// With -seeds N the experiment runs over seeds seed..seed+N-1, one
// simulator per seed fanned out on the fork-join pool, and the
// per-seed outputs are printed in seed order followed by an aggregate
// row.  The output for each seed is byte-identical to a single-seed
// run: every experiment writes to its own buffer, so parallelism
// never interleaves or reorders lines.
//
// With -metrics FILE the instrumented experiments (latency, fragments,
// updatepath, soak, scenarios) additionally dump their observability counters in
// cmd/benchjson-compatible Benchmark lines; with -trace FILE they dump
// per-message trace events as JSONL.  Both dumps are deterministic:
// the same seed produces byte-identical files at any GOMAXPROCS.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"oceanstore/internal/obs"
	"oceanstore/internal/par"
)

type experiment struct {
	name string
	desc string
	run  func(w io.Writer, seed int64, ob *obsink)
}

var experiments = []experiment{
	{"fig6", "E1: Figure 6 — normalized update cost vs update size (analytic + measured)", runFig6},
	{"latency", "E2: §4.4.5 — commit latency with 100ms WAN messages", runLatency},
	{"reliability", "E3: §4.5 — fragment availability vs whole-object replication", runReliability},
	{"bloom", "E4: §4.3.2 — attenuated Bloom filter location success and stretch", runBloom},
	{"plaxton", "E5: §4.3.3 — mesh routing hops, locate locality, salted roots", runPlaxton},
	{"fragments", "E6: §5 — archival reconstruction vs extra fragment requests", runFragments},
	{"prefetch", "E7: §5 — introspective prefetcher vs noise", runPrefetch},
	{"ciphertext", "E8: §4.4.2 — ciphertext operations and predicate overhead", runCiphertext},
	{"byzfaults", "E9: §4.4.3 — Byzantine tier under crash and lying faults", runByzFaults},
	{"replicamgmt", "E10: §4.7.2 — introspective replica management under load", runReplicaMgmt},
	{"updatepath", "E11: Figure 5 — end-to-end update path timeline", runUpdatePath},
	{"twotier", "§4.3 — combined probabilistic + global location on a pool", runTwoTier},
	{"fanout", "ablation — dissemination tree fanout vs depth and load", runFanout},
	{"soak", "steady state — Zipf mix over a maintained pool with churn", runSoak},
	{"scenarios", "adversarial suite — each audit defense armed vs switched off", runScenarios},
}

// flaggedExperiments maps the experiments that take their own flags
// after the positional seed to their flag-set constructors.
var flaggedExperiments = map[string]func() *flag.FlagSet{
	"soak":      soakFlagSet,
	"scenarios": scenariosFlagSet,
}

// obsink bundles the observability sinks one experiment run collects
// into.  A nil *obsink disables collection entirely; experiments that
// spin up several concurrent simulators give each its own sub() sink
// and merge the children back in a fixed order, mirroring internal/
// par's ordered-merge discipline so dumps stay byte-identical at any
// GOMAXPROCS.
type obsink struct {
	reg *obs.Registry
	tr  *obs.Tracer
}

// registry returns the metrics registry (nil when disabled).
func (o *obsink) registry() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// tracer returns the trace ring (nil when disabled).
func (o *obsink) tracer() *obs.Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// sub creates a child sink with the same enablement, for per-cell
// simulators that run concurrently.
func (o *obsink) sub() *obsink {
	if o == nil {
		return nil
	}
	c := &obsink{}
	if o.reg != nil {
		c.reg = obs.NewRegistry()
	}
	if o.tr != nil {
		c.tr = obs.NewTracer(0)
	}
	return c
}

// merge folds a child sink back in.  Callers must merge children in a
// deterministic order (grid order, seed order).
func (o *obsink) merge(c *obsink) {
	if o == nil || c == nil {
		return
	}
	if o.reg != nil && c.reg != nil {
		o.reg.Merge(c.reg)
	}
	if o.tr != nil && c.tr != nil {
		o.tr.Append(c.tr)
	}
}

// obsOut is where collected observability goes at the end of a run.
type obsOut struct {
	metricsW io.Writer
	traceW   io.Writer
}

// mk creates a fresh per-seed sink matching the enabled outputs, or
// nil when neither output is wanted.  Safe on a nil receiver.
func (o *obsOut) mk() *obsink {
	if o == nil || (o.metricsW == nil && o.traceW == nil) {
		return nil
	}
	ob := &obsink{}
	if o.metricsW != nil {
		ob.reg = obs.NewRegistry()
	}
	if o.traceW != nil {
		ob.tr = obs.NewTracer(0)
	}
	return ob
}

// flush writes one seed's collected metrics and trace.  Metrics become
// Benchmark lines under obs/<experiment>/s<seed>/...; the trace is a
// JSONL stream prefixed with one header object per seed section.
func (o *obsOut) flush(exp string, seed int64, ob *obsink) error {
	if o == nil || ob == nil {
		return nil
	}
	if o.metricsW != nil && ob.reg != nil {
		prefix := "obs/" + exp + "/s" + strconv.FormatInt(seed, 10)
		if err := ob.reg.WriteBench(o.metricsW, prefix); err != nil {
			return err
		}
	}
	if o.traceW != nil && ob.tr != nil {
		if _, err := fmt.Fprintf(o.traceW, "{\"exp\":%q,\"seed\":%d,\"events\":%d,\"dropped\":%d}\n",
			exp, seed, ob.tr.Len(), ob.tr.Dropped()); err != nil {
			return err
		}
		if err := ob.tr.WriteJSONL(o.traceW); err != nil {
			return err
		}
	}
	return nil
}

// seedOutputs runs e over nSeeds consecutive seeds starting at base,
// in parallel, each into its own buffer and (when mk is non-nil) its
// own observability sink.  Results come back in seed order regardless
// of how many workers ran them.
func seedOutputs(e experiment, base int64, nSeeds int, mk func() *obsink) ([][]byte, []*obsink) {
	type res struct {
		out []byte
		ob  *obsink
	}
	rs := par.Map(nSeeds, 1, func(i int) res {
		var buf bytes.Buffer
		var ob *obsink
		if mk != nil {
			ob = mk()
		}
		e.run(&buf, base+int64(i), ob)
		return res{out: buf.Bytes(), ob: ob}
	})
	outs := make([][]byte, nSeeds)
	sinks := make([]*obsink, nSeeds)
	for i, r := range rs {
		outs[i], sinks[i] = r.out, r.ob
	}
	return outs, sinks
}

// runOne executes one experiment, streaming directly for a single
// seed, or fanning the seed sweep out and printing per-seed sections
// plus an aggregate row.  Observability dumps happen in seed order.
func runOne(e experiment, base int64, nSeeds int, oo *obsOut) {
	fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
	if nSeeds <= 1 {
		ob := oo.mk()
		e.run(os.Stdout, base, ob)
		if err := oo.flush(e.name, base, ob); err != nil {
			fmt.Fprintf(os.Stderr, "obs dump: %v\n", err)
			os.Exit(1)
		}
		return
	}
	outs, sinks := seedOutputs(e, base, nSeeds, oo.mk)
	distinct := make(map[string]bool)
	for i, out := range outs {
		fmt.Printf("---- seed %d ----\n", base+int64(i))
		os.Stdout.Write(out)
		distinct[string(out)] = true
		if err := oo.flush(e.name, base+int64(i), sinks[i]); err != nil {
			fmt.Fprintf(os.Stderr, "obs dump: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("-- aggregate: %s over %d seeds [%d..%d]: %d/%d distinct outputs --\n",
		e.name, nSeeds, base, base+int64(nSeeds)-1, len(distinct), nSeeds)
}

// openSinks opens the -metrics/-trace outputs.  "-" selects stdout.
func openSinks(metricsPath, tracePath string) (*obsOut, func(), error) {
	if metricsPath == "" && tracePath == "" {
		return nil, func() {}, nil
	}
	oo := &obsOut{}
	var files []*os.File
	open := func(p string) (io.Writer, error) {
		if p == "-" {
			return os.Stdout, nil
		}
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		return f, nil
	}
	var err error
	if metricsPath != "" {
		if oo.metricsW, err = open(metricsPath); err != nil {
			return nil, nil, err
		}
	}
	if tracePath != "" {
		if oo.traceW, err = open(tracePath); err != nil {
			return nil, nil, err
		}
	}
	return oo, func() {
		for _, f := range files {
			f.Close()
		}
	}, nil
}

// startProfiles begins CPU profiling and arranges a heap dump; the
// returned stop function finishes both.  Profiles cover the experiment
// run itself (flag parsing and sink setup are negligible), so any
// subcommand can hand pprof captures to future perf work without
// ad-hoc patching.
func startProfiles(cpuPath, memPath string) func() {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "osexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "osexp: -memprofile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // materialise live-heap numbers before the dump
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "osexp: -memprofile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}

func main() {
	fs := flag.NewFlagSet("osexp", flag.ExitOnError)
	nSeeds := fs.Int("seeds", 1, "run the experiment over N consecutive seeds in parallel")
	metricsPath := fs.String("metrics", "", "write deterministic metrics as Benchmark lines to `FILE` (\"-\" for stdout)")
	tracePath := fs.String("trace", "", "write per-message trace events as JSONL to `FILE` (\"-\" for stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to `FILE`")
	memProfile := fs.String("memprofile", "", "write a pprof allocs profile (with live-heap numbers) to `FILE`")
	fs.Usage = usage
	fs.Parse(os.Args[1:])
	args := fs.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	name := args[0]
	seed := int64(1)
	rest := args[1:]
	// The optional positional seed comes before any experiment-specific
	// flags: `osexp soak 7 -nodes 10000`.
	if len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		s, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", rest[0], err)
			os.Exit(2)
		}
		seed = s
		rest = rest[1:]
	}
	if len(rest) > 0 {
		mkfs, ok := flaggedExperiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unexpected arguments %v (only soak and scenarios take experiment flags)\n", rest)
			os.Exit(2)
		}
		mkfs().Parse(rest)
	}
	var list []experiment
	if name == "all" {
		list = experiments
	} else {
		for _, e := range experiments {
			if e.name == name {
				list = []experiment{e}
			}
		}
		if list == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
			usage()
			os.Exit(2)
		}
	}
	oo, closeSinks, err := openSinks(*metricsPath, *tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "osexp: %v\n", err)
		os.Exit(1)
	}
	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	for _, e := range list {
		runOne(e, seed, *nSeeds, oo)
		if name == "all" {
			fmt.Println()
		}
	}
	stopProfiles()
	closeSinks()
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: osexp [-seeds N] [-metrics FILE] [-trace FILE] <experiment> [seed] [experiment flags]")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all          run everything")
	fmt.Fprintln(os.Stderr, "flags:")
	fmt.Fprintln(os.Stderr, "  -seeds N       run over seeds seed..seed+N-1 in parallel, with an aggregate row")
	fmt.Fprintln(os.Stderr, "  -metrics FILE  dump deterministic counters/histograms as Benchmark lines")
	fmt.Fprintln(os.Stderr, "  -trace FILE    dump per-message trace events as JSONL (instrumented experiments)")
	fmt.Fprintln(os.Stderr, "  -cpuprofile FILE  write a pprof CPU profile of the run")
	fmt.Fprintln(os.Stderr, "  -memprofile FILE  write a pprof allocs profile of the run")
	fmt.Fprintln(os.Stderr, "soak flags (after the seed): -nodes -ops -clients -objects -secondaries -write -create -zipf")
	fmt.Fprintln(os.Stderr, "  -size -think -openloop -arrival -maxinflight -churn -downfor -grow -growat")
	fmt.Fprintln(os.Stderr, "  -shards -backend -storedir -scrub -flush -introspect -iepoch -readsvc")
	fmt.Fprintln(os.Stderr, "  -flash -flashfor -flashmass -flashobjs -diurnal -nightrate -hotrotate")
	fmt.Fprintln(os.Stderr, "scenarios flags (after the seed): -only NAME -armedonly -interval D")
}
