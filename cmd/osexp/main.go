// Command osexp regenerates every quantitative figure and claim in the
// OceanStore paper (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	osexp [-seeds N] <experiment> [seed]
//
// where <experiment> is one of: fig6, latency, reliability, bloom,
// plaxton, fragments, prefetch, ciphertext, byzfaults, replicamgmt,
// updatepath, or "all".
//
// With -seeds N the experiment runs over seeds seed..seed+N-1, one
// simulator per seed fanned out on the fork-join pool, and the
// per-seed outputs are printed in seed order followed by an aggregate
// row.  The output for each seed is byte-identical to a single-seed
// run: every experiment writes to its own buffer, so parallelism
// never interleaves or reorders lines.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"oceanstore/internal/par"
)

type experiment struct {
	name string
	desc string
	run  func(w io.Writer, seed int64)
}

var experiments = []experiment{
	{"fig6", "E1: Figure 6 — normalized update cost vs update size (analytic + measured)", runFig6},
	{"latency", "E2: §4.4.5 — commit latency with 100ms WAN messages", runLatency},
	{"reliability", "E3: §4.5 — fragment availability vs whole-object replication", runReliability},
	{"bloom", "E4: §4.3.2 — attenuated Bloom filter location success and stretch", runBloom},
	{"plaxton", "E5: §4.3.3 — mesh routing hops, locate locality, salted roots", runPlaxton},
	{"fragments", "E6: §5 — archival reconstruction vs extra fragment requests", runFragments},
	{"prefetch", "E7: §5 — introspective prefetcher vs noise", runPrefetch},
	{"ciphertext", "E8: §4.4.2 — ciphertext operations and predicate overhead", runCiphertext},
	{"byzfaults", "E9: §4.4.3 — Byzantine tier under crash and lying faults", runByzFaults},
	{"replicamgmt", "E10: §4.7.2 — introspective replica management under load", runReplicaMgmt},
	{"updatepath", "E11: Figure 5 — end-to-end update path timeline", runUpdatePath},
	{"twotier", "§4.3 — combined probabilistic + global location on a pool", runTwoTier},
	{"fanout", "ablation — dissemination tree fanout vs depth and load", runFanout},
	{"soak", "steady state — Zipf mix over a maintained pool with churn", runSoak},
}

// seedOutputs runs e over nSeeds consecutive seeds starting at base,
// in parallel, each into its own buffer.  Results come back in seed
// order regardless of how many workers ran them.
func seedOutputs(e experiment, base int64, nSeeds int) [][]byte {
	return par.Map(nSeeds, 1, func(i int) []byte {
		var buf bytes.Buffer
		e.run(&buf, base+int64(i))
		return buf.Bytes()
	})
}

// runOne executes one experiment, streaming directly for a single
// seed, or fanning the seed sweep out and printing per-seed sections
// plus an aggregate row.
func runOne(e experiment, base int64, nSeeds int) {
	fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
	if nSeeds <= 1 {
		e.run(os.Stdout, base)
		return
	}
	outs := seedOutputs(e, base, nSeeds)
	distinct := make(map[string]bool)
	for i, out := range outs {
		fmt.Printf("---- seed %d ----\n", base+int64(i))
		os.Stdout.Write(out)
		distinct[string(out)] = true
	}
	fmt.Printf("-- aggregate: %s over %d seeds [%d..%d]: %d/%d distinct outputs --\n",
		e.name, nSeeds, base, base+int64(nSeeds)-1, len(distinct), nSeeds)
}

func main() {
	fs := flag.NewFlagSet("osexp", flag.ExitOnError)
	nSeeds := fs.Int("seeds", 1, "run the experiment over N consecutive seeds in parallel")
	fs.Usage = usage
	fs.Parse(os.Args[1:])
	args := fs.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	seed := int64(1)
	if len(args) > 1 {
		s, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", args[1], err)
			os.Exit(2)
		}
		seed = s
	}
	name := args[0]
	if name == "all" {
		for _, e := range experiments {
			runOne(e, seed, *nSeeds)
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			runOne(e, seed, *nSeeds)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: osexp [-seeds N] <experiment> [seed]")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all          run everything")
	fmt.Fprintln(os.Stderr, "flags:")
	fmt.Fprintln(os.Stderr, "  -seeds N     run over seeds seed..seed+N-1 in parallel, with an aggregate row")
}
