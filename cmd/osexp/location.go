package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"oceanstore/internal/bloom"
	"oceanstore/internal/guid"
	"oceanstore/internal/plaxton"
)

// torus builds a side×side 4-regular torus adjacency list.
func torus(side int) [][]int {
	n := side * side
	adj := make([][]int, n)
	at := func(x, y int) int { return ((y+side)%side)*side + (x+side)%side }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			u := at(x, y)
			adj[u] = []int{at(x+1, y), at(x-1, y), at(x, y+1), at(x, y-1)}
		}
	}
	return adj
}

// runBloom prints E4: the probabilistic tier's success rate within the
// filter horizon, its hop stretch vs optimal, and per-node state, for
// several filter depths.
func runBloom(w io.Writer, seed int64, _ *obsink) {
	const side = 16 // 256-node torus
	const objects = 120
	const queries = 400
	fmt.Fprintf(w, "topology: %dx%d torus (%d nodes), %d objects, %d queries\n\n", side, side, side*side, objects, queries)
	fmt.Fprintf(w, "%-6s %-16s %-12s %-12s %-14s\n", "depth", "within-horizon", "success", "stretch", "state/node")
	for _, depth := range []int{2, 3, 4, 5} {
		r := rand.New(rand.NewSource(seed))
		adj := torus(side)
		loc := bloom.NewLocator(adj, depth, 16384, 4)
		var objs []guid.GUID
		for i := 0; i < objects; i++ {
			g := guid.Random(r)
			loc.Place(r.Intn(len(adj)), g)
			objs = append(objs, g)
		}
		loc.Rebuild()
		within, found, hops, opt := 0, 0, 0, 0
		for q := 0; q < queries; q++ {
			g := objs[r.Intn(len(objs))]
			start := r.Intn(len(adj))
			d := loc.ShortestDistance(start, g)
			if d > depth {
				continue // beyond the probabilistic horizon: global tier's job
			}
			within++
			res := loc.Query(start, g, 4*depth, r)
			if res.Found {
				found++
				hops += res.Hops
				opt += d
			}
		}
		stretch := 1.0
		if opt > 0 {
			stretch = float64(hops) / float64(opt)
		}
		fmt.Fprintf(w, "%-6d %-16d %3d/%-8d %-12.3f %6d B\n", depth, within, found, within, stretch, loc.StateBytes(0))
	}
	fmt.Fprintln(w, "\npaper (§5): \"our algorithm finds nearby objects with near-optimal efficiency\"")
}

// runPlaxton prints E5: routing hop scaling, locate locality, and the
// effect of salted multi-roots on availability after root failure.
func runPlaxton(w io.Writer, seed int64, _ *obsink) {
	fmt.Fprintln(w, "-- routing hops vs network size (paper: O(log n) resolution) --")
	fmt.Fprintf(w, "%-8s %-10s %-12s %-10s\n", "nodes", "avg hops", "max hops", "log16(n)")
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		r := rand.New(rand.NewSource(seed))
		mesh, dist := randomMesh(n, r)
		_ = dist
		tot, maxh := 0, 0
		const trials = 100
		for i := 0; i < trials; i++ {
			res, err := mesh.RouteToRoot(r.Intn(n), guid.Random(r))
			if err != nil {
				panic(err)
			}
			tot += res.Hops()
			if res.Hops() > maxh {
				maxh = res.Hops()
			}
		}
		fmt.Fprintf(w, "%-8d %-10.2f %-12d %-10.2f\n", n, float64(tot)/trials, maxh, math.Log(float64(n))/math.Log(16))
	}

	fmt.Fprintln(w, "\n-- locate distance vs distance to the closest replica (locality) --")
	{
		r := rand.New(rand.NewSource(seed))
		mesh, dist := randomMesh(512, r)
		g := guid.Random(r)
		var holders []int
		for i := 0; i < 512; i += 32 {
			if _, err := mesh.Publish(i, g, 0); err != nil {
				panic(err)
			}
			holders = append(holders, i)
		}
		var locSum, optSum, randSum float64
		const trials = 200
		for i := 0; i < trials; i++ {
			start := r.Intn(512)
			res, err := mesh.Locate(start, g, 0)
			if err != nil {
				continue
			}
			best := math.Inf(1)
			for _, h := range holders {
				if d := dist(start, h); d < best {
					best = d
				}
			}
			locSum += dist(start, res.Holder)
			optSum += best
			randSum += dist(start, holders[r.Intn(len(holders))])
		}
		fmt.Fprintf(w, "mean distance to located replica: %8.2f\n", locSum/trials)
		fmt.Fprintf(w, "mean distance to closest replica: %8.2f\n", optSum/trials)
		fmt.Fprintf(w, "mean distance to random replica:  %8.2f\n", randSum/trials)
	}

	fmt.Fprintln(w, "\n-- salted multi-root fault tolerance (root path killed) --")
	fmt.Fprintf(w, "%-8s %-16s %-14s\n", "salts", "locate success", "publish hops")
	for _, salts := range []uint32{1, 2, 4, 8} {
		r := rand.New(rand.NewSource(seed))
		mesh, _ := randomMesh(256, r)
		mesh.Salts = salts
		g := guid.Random(r)
		holder := 17
		hops, err := mesh.Publish(holder, g, 0)
		if err != nil {
			panic(err)
		}
		// Kill the primary root path (except the holder).
		res, _ := mesh.RouteToRoot(holder, g)
		for _, idx := range res.Path {
			if idx != holder {
				mesh.RemoveNode(idx)
			}
		}
		ok, total := 0, 0
		for start := 0; start < 256; start += 5 {
			if mesh.Node(start).Down {
				continue
			}
			total++
			if lr, err := mesh.Locate(start, g, 0); err == nil && lr.Holder == holder {
				ok++
			}
		}
		fmt.Fprintf(w, "%-8d %3d/%-12d %-14d\n", salts, ok, total, hops)
	}
	fmt.Fprintln(w, "\npaper: salted GUIDs map to several roots, \"gaining redundancy and simultaneously")
	fmt.Fprintln(w, "making it difficult to target a single node with a denial of service attack\"")
}

// randomMesh builds an n-node mesh over random plane positions.
func randomMesh(n int, r *rand.Rand) (*plaxton.Mesh, func(a, b int) float64) {
	ids := make([]guid.GUID, n)
	pos := make([][2]float64, n)
	for i := range ids {
		ids[i] = guid.Random(r)
		pos[i] = [2]float64{r.Float64() * 100, r.Float64() * 100}
	}
	dist := func(a, b int) float64 {
		return math.Hypot(pos[a][0]-pos[b][0], pos[a][1]-pos[b][1])
	}
	return plaxton.New(ids, dist), dist
}
