package main

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

func findExperiment(t *testing.T, name string) experiment {
	t.Helper()
	for _, e := range experiments {
		if e.name == name {
			return e
		}
	}
	t.Fatalf("experiment %q not registered", name)
	return experiment{}
}

// TestScenariosFlagParsing: the scenarios subcommand's flags, table
// driven over the same path main() takes.
func TestScenariosFlagParsing(t *testing.T) {
	saved := scenarioOpts
	defer func() { scenarioOpts = saved }()
	cases := []struct {
		name      string
		args      []string
		only      string
		armedOnly bool
		interval  time.Duration
	}{
		{"defaults", nil, "", false, 0},
		{"only", []string{"-only", "bitrot-drizzle"}, "bitrot-drizzle", false, 0},
		{"armedonly", []string{"-armedonly"}, "", true, 0},
		{"both", []string{"-only", "az-loss", "-armedonly"}, "az-loss", true, 0},
		{"interval", []string{"-interval", "30s"}, "", false, 30 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scenarioOpts.only, scenarioOpts.armedOnly, scenarioOpts.interval = "", false, 0
			if err := scenariosFlagSet().Parse(tc.args); err != nil {
				t.Fatalf("parse %v: %v", tc.args, err)
			}
			if scenarioOpts.only != tc.only || scenarioOpts.armedOnly != tc.armedOnly ||
				scenarioOpts.interval != tc.interval {
				t.Fatalf("parse %v: got %+v, want only=%q armedonly=%v interval=%v",
					tc.args, scenarioOpts, tc.only, tc.armedOnly, tc.interval)
			}
		})
	}
}

// TestSoakFlagParsing covers the soak subcommand's flag set the same
// way; a mis-declared flag name or type breaks heavy-run scripts.
func TestSoakFlagParsing(t *testing.T) {
	saved := soakOpts
	defer func() { soakOpts = saved }()
	cases := []struct {
		name  string
		args  []string
		check func() bool
	}{
		{"nodes-ops", []string{"-nodes", "512", "-ops", "100"},
			func() bool { return soakOpts.nodes == 512 && soakOpts.ops == 100 }},
		{"mix", []string{"-write", "0.5", "-create", "0.1", "-zipf", "1.3"},
			func() bool { return soakOpts.write == 0.5 && soakOpts.create == 0.1 && soakOpts.zipf == 1.3 }},
		{"openloop", []string{"-openloop", "-arrival", "25ms"},
			func() bool { return soakOpts.open && soakOpts.arrival == 25*time.Millisecond }},
		{"churn", []string{"-churn", "2m", "-downfor", "30s"},
			func() bool { return soakOpts.churn == 2*time.Minute && soakOpts.downFor == 30*time.Second }},
		{"growth", []string{"-grow", "64", "-growat", "1m"},
			func() bool { return soakOpts.grow == 64 && soakOpts.growAt == time.Minute }},
		{"introspect", []string{"-introspect", "-readsvc", "5ms", "-secondaries", "8", "-iepoch", "2s"},
			func() bool {
				return soakOpts.introspect && soakOpts.readSvc == 5*time.Millisecond &&
					soakOpts.secondaries == 8 && soakOpts.iepoch == 2*time.Second
			}},
		{"shape", []string{"-flash", "3m", "-flashmass", "0.8", "-flashobjs", "2", "-diurnal", "1h", "-hotrotate", "10m"},
			func() bool {
				return soakOpts.flash == 3*time.Minute && soakOpts.flashMass == 0.8 &&
					soakOpts.flashObjs == 2 && soakOpts.diurnal == time.Hour &&
					soakOpts.hotRotate == 10*time.Minute
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			soakOpts = saved
			if err := soakFlagSet().Parse(tc.args); err != nil {
				t.Fatalf("parse %v: %v", tc.args, err)
			}
			if !tc.check() {
				t.Fatalf("parse %v left wrong option values: %+v", tc.args, soakOpts)
			}
		})
	}
}

// TestScenariosReportShape: the report must carry one armed line per
// catalogue entry, the paired disarmed lines, and the greppable
// summary the smoke target gates on.
func TestScenariosReportShape(t *testing.T) {
	saved := scenarioOpts
	defer func() { scenarioOpts = saved }()
	scenarioOpts.only, scenarioOpts.armedOnly = "", false
	e := findExperiment(t, "scenarios")
	var buf bytes.Buffer
	e.run(&buf, 42, nil)
	out := buf.String()
	for _, want := range []string{
		"scenario bitrot-drizzle", "scenario byz-minority", "scenario partition-heal-storm",
		"scenario az-loss", "scenario churn-during-audit", "scenario audit-amplification",
		"scenario replica-tamper", "scenario flash-crowd",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if !strings.Contains(out, "invariant failures: 0") {
		t.Errorf("report must end with a zero-failure summary; got:\n%s", out)
	}
	if got := strings.Count(out, "disarmed broke as expected"); got != 8 {
		t.Errorf("want 8 disarmed-breakage lines, got %d", got)
	}
}

// TestScenariosOnlyUnknown: a typo'd -only must not read as success.
func TestScenariosOnlyUnknown(t *testing.T) {
	saved := scenarioOpts
	defer func() { scenarioOpts = saved }()
	scenarioOpts.only, scenarioOpts.armedOnly = "no-such-scenario", false
	e := findExperiment(t, "scenarios")
	var buf bytes.Buffer
	e.run(&buf, 1, nil)
	if !strings.Contains(buf.String(), "invariant failures: 1") {
		t.Fatalf("unknown scenario must count as a failure; got:\n%s", buf.String())
	}
}

// TestSoakReportShape: the soak report's load-bearing lines, which
// scripts and EXPERIMENTS.md excerpts grep for.
func TestSoakReportShape(t *testing.T) {
	saved := soakOpts
	defer func() { soakOpts = saved }()
	soakOpts.nodes, soakOpts.ops = 32, 60
	e := findExperiment(t, "soak")
	var buf bytes.Buffer
	e.run(&buf, 1, nil)
	out := buf.String()
	for _, want := range []string{"soak: ", "ops: ", "latency: p50", "traffic: ", "committed updates"} {
		if !strings.Contains(out, want) {
			t.Errorf("soak report missing %q; got:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("small soak run should drain cleanly; got:\n%s", out)
	}
}

// TestScenariosObsDumpProcsInvariant is the acceptance gate for the
// audited run's observability: with a fixed seed, the -metrics dump of
// the scenarios experiment (whose armed runs instrument simnet, the
// archive and the auditor) must be byte-identical at GOMAXPROCS=1
// and 4.
func TestScenariosObsDumpProcsInvariant(t *testing.T) {
	saved := scenarioOpts
	defer func() { scenarioOpts = saved }()
	// One audited scenario keeps the test quick; bitrot-drizzle runs the
	// full detect-and-repair loop.
	scenarioOpts.only, scenarioOpts.armedOnly = "bitrot-drizzle", false
	e := findExperiment(t, "scenarios")
	run := func(procs int) ([]byte, []byte) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		return obsDump(t, e, 11, 2)
	}
	m1, t1 := run(1)
	m4, t4 := run(4)
	if len(m1) == 0 {
		t.Fatal("empty metrics dump")
	}
	if !bytes.Contains(m1, []byte("audit")) {
		t.Fatal("metrics dump carries no audit counters — the auditor was not instrumented")
	}
	if !bytes.Equal(m1, m4) {
		t.Fatal("metrics dump differs between GOMAXPROCS=1 and 4")
	}
	if !bytes.Equal(t1, t4) {
		t.Fatal("trace dump differs between GOMAXPROCS=1 and 4")
	}
}
