package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/byz"
	"oceanstore/internal/core"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/object"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
)

// runCiphertext prints E8: the Figure 4 operations on ciphertext plus
// the predicate set, with sizes, all without the server ever holding a
// key.
func runCiphertext(w io.Writer, seed int64, _ *obsink) {
	r := rand.New(rand.NewSource(seed))
	key := crypt.NewBlockKey(r)
	v := object.NewObject([]byte("AABBCC"), 2, key)
	fmt.Fprintf(w, "object: 3 blocks [AA BB CC], encrypted, %d bytes stored\n\n", v.BytesStored())

	show := func(label string, v *object.Version) {
		got, err := object.NewView(v, key).Read()
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-28s logical=%-14q physical blocks=%d size=%d\n", label, got, len(v.Blocks), v.Size)
	}
	show("initial", v)

	apply := func(label string, ops []object.Op) {
		nv := v.Clone(0)
		for _, op := range ops {
			if err := nv.ApplyOp(op); err != nil {
				panic(err)
			}
		}
		v = nv
		show(label, v)
	}
	ed, _ := object.NewEditor(v, key)
	ins, _ := ed.InsertBefore(1, []byte("xy"))
	apply("insert-block before BB", ins)

	ed, _ = object.NewEditor(v, key)
	del, _ := ed.Delete(3)
	apply("delete-block CC", []object.Op{del})

	ed, _ = object.NewEditor(v, key)
	apply("append ZZ", []object.Op{ed.Append([]byte("ZZ"))})

	ed, _ = object.NewEditor(v, key)
	rep, _ := ed.Replace(0, []byte("aa"))
	apply("replace-block AA->aa", []object.Op{rep})

	fmt.Fprintln(w, "\n-- server-side predicates (no key) --")
	ed, _ = object.NewEditor(v, key)
	blk, pos, _ := ed.ExpectedBlock(0, []byte("aa"))
	p1 := update.Predicate{Kind: update.PredCompareBlock, Pos: pos, Digest: blk.Digest()}
	fmt.Fprintf(w, "compare-block(0, E(\"aa\"))   -> %v\n", p1.Eval(v))
	blk2, _, _ := ed.ExpectedBlock(0, []byte("ZZ"))
	p2 := update.Predicate{Kind: update.PredCompareBlock, Pos: pos, Digest: blk2.Digest()}
	fmt.Fprintf(w, "compare-block(0, E(\"ZZ\"))   -> %v\n", p2.Eval(v))
	p3 := update.Predicate{Kind: update.PredCompareVersion, Cmp: update.CmpEQ, Version: v.Num}
	fmt.Fprintf(w, "compare-version(= %d)        -> %v\n", v.Num, p3.Eval(v))
	p4 := update.Predicate{Kind: update.PredCompareSize, Cmp: update.CmpEQ, Size: v.Size}
	fmt.Fprintf(w, "compare-size(= %d)           -> %v\n", v.Size, p4.Eval(v))

	sk := crypt.NewSearchKey(key)
	v.Index = sk.BuildIndex([]string{"urgent", "invoice", "ocean"})
	p5 := update.Predicate{Kind: update.PredSearch, Trapdoor: sk.Trapdoor("ocean"), WantMatch: true}
	p6 := update.Predicate{Kind: update.PredSearch, Trapdoor: sk.Trapdoor("spam"), WantMatch: true}
	fmt.Fprintf(w, "search(trapdoor \"ocean\")     -> %v\n", p5.Eval(v))
	fmt.Fprintf(w, "search(trapdoor \"spam\")      -> %v\n", p6.Eval(v))
	fmt.Fprintf(w, "\nencrypted word index: %d bytes for 3 words; cells are opaque without a trapdoor\n",
		v.Index.SizeBytes())
	fmt.Fprintln(w, "paper (Fig 4): \"The server learns nothing about the contents of any of the blocks.\"")
}

// runByzFaults prints E9: agreement outcomes with increasing crash and
// lying replica counts in an n=13, f=4 tier.
func runByzFaults(w io.Writer, seed int64, _ *obsink) {
	const n, f = 13, 4
	fmt.Fprintf(w, "tier: n=%d replicas, f=%d tolerated (n = 3f+1)\n\n", n, f)
	fmt.Fprintf(w, "%-10s %-10s %-10s %-10s\n", "crashed", "lying", "committed", "latency")
	for _, tc := range []struct{ crash, lie int }{
		{0, 0}, {2, 0}, {4, 0}, {0, 2}, {0, 4}, {2, 2}, {5, 0}, {0, 5},
	} {
		k, _, g, client := tier(n, f, seed)
		for i := 0; i < tc.crash; i++ {
			g.SetFault(1+i, byz.Crashed)
		}
		for i := 0; i < tc.lie; i++ {
			g.SetFault(1+tc.crash+i, byz.Lying)
		}
		var lat time.Duration
		committed := false
		g.Submit(client, byz.Request{ID: guid.FromData([]byte(fmt.Sprint(tc))), Payload: "u", Size: 1000},
			func(r byz.Result) { committed, lat = true, r.Latency })
		k.RunFor(time.Minute)
		latStr := "-"
		if committed {
			latStr = lat.String()
		}
		fmt.Fprintf(w, "%-10d %-10d %-10v %-10s\n", tc.crash, tc.lie, committed, latStr)
	}
	fmt.Fprintf(w, "\npaper: protocol assumes no more than m=%d of n=3m+1=%d replicas are faulty;\n", f, n)
	fmt.Fprintln(w, "beyond the bound the tier loses liveness (but the client is never given a wrong result)")
}

// runUpdatePath prints E11: the Figure 5 timeline of one update through
// a pool with 100 secondaries, showing when tentative data appears and
// when the commit reaches everyone.
func runUpdatePath(w io.Writer, seed int64, ob *obsink) {
	cfg := core.DefaultPoolConfig()
	cfg.Nodes = 128
	cfg.Ring.Archive = archive.Config{DataShards: 8, TotalFragments: 16}
	cfg.Ring.GossipInterval = 500 * time.Millisecond
	p := core.NewPool(seed, cfg)
	p.Instrument(ob.registry(), ob.tracer())
	client := p.NewClient(127, crypt.NewSigner(p.K.Rand()))
	client.Spread = 4
	obj, err := client.Create("timeline", []byte(""))
	if err != nil {
		panic(err)
	}
	ring, _ := p.Ring(obj)
	for i := 4; i < 104; i++ {
		if err := p.AddReplica(obj, simnet.NodeID(i)); err != nil {
			panic(err)
		}
	}
	sess := client.NewSession(0)
	start := p.K.Now()
	var commitAt time.Duration
	sess.OnCommit(func(guid.GUID, update.UpdateID) { commitAt = p.K.Now() - start })
	if _, err := sess.Append(obj, []byte("payload")); err != nil {
		panic(err)
	}

	id := update.UpdateID{Client: client.Signer.GUID(), Seq: 1}
	fmt.Fprintf(w, "pool: 128 nodes, 4 primaries, 100 secondaries, gossip every 500ms\n\n")
	fmt.Fprintf(w, "%-10s %-22s %-22s\n", "t(ms)", "secondaries tentative", "secondaries committed")
	for _, at := range []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
		500 * time.Millisecond, time.Second, 2 * time.Second, 5 * time.Second, 15 * time.Second,
	} {
		p.K.RunUntil(start + at)
		tent, comm := 0, 0
		for _, sec := range ring.Secondaries() {
			if sec.Rep.Seen(id) {
				tent++
			}
			if sec.Rep.CommittedLen() > 0 {
				comm++
			}
		}
		fmt.Fprintf(w, "%-10d %3d/100 %18s %3d/100\n", at.Milliseconds(), tent, "", comm)
	}
	fmt.Fprintf(w, "\nclient observed commit after %v\n", commitAt)
	fmt.Fprintf(w, "archival snapshots generated at commit: %d (deep archival coupling, §4.4.4)\n", len(ring.ArchiveRoots))
}
