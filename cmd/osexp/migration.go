package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"oceanstore/internal/introspect"
	"oceanstore/internal/workload"
)

// newRand builds a seeded source for experiments in this file.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func init() {
	experiments = append(experiments, experiment{
		"migration",
		"§4.7.2 — periodic cluster migration: office by day, home by night",
		runMigration,
	})
}

// runMigration reproduces §4.7.2's promise: "users will find their
// project files and email folder on a local machine during the work
// day, and waiting for them on their home machines at night."  Two
// weeks of diurnal accesses train the migration detector; we then
// compare access latency when data sits statically at one site versus
// when it migrates ahead of the predicted site, gated by the
// detector's confidence estimate.
func runMigration(w io.Writer, seed int64, _ *obsink) {
	const (
		office, home = 0, 1
		officeLat    = 5 * time.Millisecond  // local LAN when data is here
		homeLat      = 5 * time.Millisecond  // local when at home
		crossLat     = 80 * time.Millisecond // WAN hop when data is remote
	)
	rng := newRand(seed)
	det := introspect.NewMigrationDetector(24*time.Hour, 24)

	// Train on two weeks: 9-17h at the office, evenings at home.
	for _, o := range workload.Diurnal(14, 40, office, home, 9, 17, rng) {
		det.Observe(o.Site, o.At)
	}

	// Evaluate a fresh day of accesses under three policies.
	day := 30 * 24 * time.Hour
	eval := workload.Diurnal(1, 200, office, home, 9, 17, rng)
	latency := func(dataSite, accessSite int) time.Duration {
		if dataSite == accessSite {
			if accessSite == office {
				return officeLat
			}
			return homeLat
		}
		return crossLat
	}
	var staticLat, migrateLat time.Duration
	migrated, confident := 0, 0
	for _, o := range eval {
		at := day + (o.At % (24 * time.Hour))
		// Static policy: data pinned at the office.
		staticLat += latency(office, o.Site)
		// Migration policy: data prefetched to the predicted site when
		// confidence is high; otherwise it stays where it was.
		site := office
		if pred, ok := det.PredictSite(at); ok && det.Confidence(at) > 0.8 {
			site = pred
			confident++
			if pred == home {
				migrated++
			}
		}
		migrateLat += latency(site, o.Site)
	}
	n := time.Duration(len(eval))
	fmt.Fprintf(w, "accesses: %d over one simulated day (office hours 9-17)\n\n", len(eval))
	fmt.Fprintf(w, "%-28s %-16s\n", "policy", "mean access lat")
	fmt.Fprintf(w, "%-28s %-16v\n", "static (pinned at office)", staticLat/n)
	fmt.Fprintf(w, "%-28s %-16v\n", "introspective migration", migrateLat/n)
	fmt.Fprintf(w, "\npredictions made with confidence >0.8: %d/%d (%d pointed home)\n",
		confident, len(eval), migrated)
	fmt.Fprintln(w, "paper (§4.7.2): \"users will find their project files and email folder on a")
	fmt.Fprintln(w, "local machine during the work day, and waiting for them on their home")
	fmt.Fprintln(w, "machines at night\"")
}
