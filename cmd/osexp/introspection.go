package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/core"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/introspect"
	"oceanstore/internal/simnet"
)

// runPrefetch prints E7: prefetcher hit rate vs noise fraction for
// model orders 0..3, on traces with embedded order-2 correlations.
func runPrefetch(w io.Writer, seed int64, _ *obsink) {
	fmt.Fprintln(w, "trace: repeating order-2 patterns (A,B -> C; X,B -> D) mixed with uniform noise")
	fmt.Fprintln(w, "metric: top-1 prediction hit rate (400-access traces, 40-access warmup)")
	fmt.Fprintln(w)
	A, B, C, D, X := gg(1), gg(2), gg(3), gg(4), gg(5)
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-10s\n", "noise", "order-0", "order-1", "order-2", "order-3")
	for _, noise := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		r := rand.New(rand.NewSource(seed))
		var trace []guid.GUID
		for len(trace) < 400 {
			if r.Float64() < noise {
				trace = append(trace, gg(byte(50+r.Intn(150))))
				continue
			}
			if r.Float64() < 0.5 {
				trace = append(trace, A, B, C)
			} else {
				trace = append(trace, X, B, D)
			}
		}
		fmt.Fprintf(w, "%-8.1f", noise)
		for order := 0; order <= 3; order++ {
			rate := introspect.HitRate(introspect.NewPrefetcher(order), trace, 1, 40)
			fmt.Fprintf(w, " %-10.3f", rate)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\npaper (§5): \"the method correctly captured high-order correlations, even in the")
	fmt.Fprintln(w, "presence of noise\" — order>=2 models dominate order-0/1 and degrade gracefully")
}

func gg(b byte) guid.GUID { return guid.FromData([]byte{b}) }

// runReplicaMgmt prints E10: a hot object gains floating replicas near
// its clients, dropping read latency; when load fades, replicas retire.
func runReplicaMgmt(w io.Writer, seed int64, _ *obsink) {
	cfg := core.DefaultPoolConfig()
	cfg.Nodes = 48
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	p := core.NewPool(seed, cfg)
	owner := p.NewClient(47, crypt.NewSigner(p.K.Rand()))
	obj, err := owner.Create("hot-object", []byte("content"))
	if err != nil {
		panic(err)
	}
	ring, _ := p.Ring(obj)

	// Reader clients scattered across the pool.
	var readers []*core.Client
	for i := 30; i < 44; i++ {
		c := p.NewClient(simnet.NodeID(i), crypt.NewSigner(p.K.Rand()))
		owner.GrantRead(obj, c)
		readers = append(readers, c)
	}
	meanReadLatency := func() time.Duration {
		var sum time.Duration
		for _, c := range readers {
			// Latency to the closest replica that could serve the read.
			best := p.Net.Latency(c.Node, 0)
			for _, sec := range ring.Secondaries() {
				if l := p.Net.Latency(c.Node, sec.Node); l < best {
					best = l
				}
			}
			sum += best
		}
		return sum / time.Duration(len(readers))
	}

	mgr := introspect.ManagerConfig{SpawnAbove: 50, RetireBelow: 5, MinReplicas: 0, MaxReplicas: 8}
	fmt.Fprintf(w, "%-8s %-10s %-10s %-16s\n", "round", "load", "replicas", "mean read lat")
	nextNode := 4
	for round := 0; round < 8; round++ {
		load := 200.0 // hot phase
		if round >= 5 {
			load = 1.0 // load fades
		}
		// Aggregate load splits across current replicas (primary counts
		// as one serving replica).
		serving := 1 + len(ring.Secondaries())
		perReplica := load / float64(serving)
		loads := []introspect.ReplicaLoad{{ReplicaID: -1, Rate: perReplica}}
		for _, sec := range ring.Secondaries() {
			loads = append(loads, introspect.ReplicaLoad{ReplicaID: int(sec.Node), Rate: perReplica})
		}
		for _, act := range introspect.Decide(loads, mgr) {
			if act.Spawn && nextNode < 28 {
				if err := p.AddReplica(obj, simnet.NodeID(nextNode)); err == nil {
					nextNode++
				}
			} else if !act.Spawn && act.Retire >= 0 {
				p.RemoveReplica(obj, simnet.NodeID(act.Retire))
			}
		}
		p.Run(5 * time.Second)
		fmt.Fprintf(w, "%-8d %-10.0f %-10d %-16v\n", round, load, len(ring.Secondaries()), meanReadLatency())
	}
	fmt.Fprintln(w, "\npaper (§4.7.2): overloaded replicas request assistance and parents create")
	fmt.Fprintln(w, "additional floating replicas nearby; disused replicas are eliminated")
}
