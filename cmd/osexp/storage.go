package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// runReliability prints E3: the paper's §4.5 availability numbers —
// two-way replication vs rate-1/2 fragmentation at 10% machine
// downtime, closed form and Monte Carlo.
func runReliability(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const p = 0.1
	fmt.Printf("machine downtime: %.0f%% (paper: \"a million machines, ten percent of which are currently down\")\n\n", p*100)
	fmt.Printf("%-34s %-14s %-12s %-10s\n", "scheme", "P(available)", "monte-carlo", "nines")

	repl := archive.ReplicationAvailability(2, p)
	fmt.Printf("%-34s %-14.9f %-12s %-10.2f\n", "2-way replication (same storage)", repl, "-", archive.Nines(repl))

	for _, f := range []int{16, 32, 64} {
		closed := archive.Availability(f, f/2, p)
		mc := archive.AvailabilityMonteCarlo(f, f/2, p, 200000, rng)
		fmt.Printf("rate-1/2 erasure, %-3d fragments    %-14.9f %-12.6f %-10.2f\n", f, closed, mc, archive.Nines(closed))
	}
	p16 := archive.Availability(16, 8, p)
	p32 := archive.Availability(32, 16, p)
	fmt.Printf("\nunavailability improvement 16 -> 32 fragments: %.0fx (paper: \"another factor of 4000\")\n",
		(1-p16)/(1-p32))
	fmt.Printf("paper: replication gives two nines (0.99); 16 fragments give over five nines (0.999994)\n")
}

// runFragments prints E6: reconstruction success and latency vs the
// number of extra fragments requested, under request drop rates.
func runFragments(seed int64) {
	const trials = 20
	fmt.Printf("archive: rate-1/2, 32 fragments (need 16); per-message drop probability sweep\n\n")
	fmt.Printf("%-8s %-8s %-12s %-14s\n", "dropP", "extra", "success", "mean latency")
	for _, drop := range []float64{0, 0.05, 0.1, 0.2} {
		for _, extra := range []int{0, 4, 8, 16} {
			ok := 0
			var latSum time.Duration
			for trial := 0; trial < trials; trial++ {
				k := sim.NewKernel(seed + int64(trial))
				net := simnet.New(k, simnet.Config{
					BaseLatency:    20 * time.Millisecond,
					LatencyPerUnit: time.Millisecond,
					DropProb:       drop,
				})
				nodes := net.AddRandomNodes(48, 50, 6)
				svc := archive.NewService(net, nodes)
				data := make([]byte, 8192)
				rand.New(rand.NewSource(int64(trial))).Read(data)
				root, err := svc.Archive(data, archive.Config{DataShards: 16, TotalFragments: 32}, nil)
				if err != nil {
					panic(err)
				}
				done := false
				var lat time.Duration
				svc.Retrieve(0, root, extra, 5*time.Second, func(d []byte, err error, l time.Duration) {
					if err == nil && bytes.Equal(d, data) {
						done, lat = true, l
					}
				})
				k.RunFor(10 * time.Second)
				if done {
					ok++
					latSum += lat
				}
			}
			mean := time.Duration(0)
			if ok > 0 {
				mean = latSum / time.Duration(ok)
			}
			fmt.Printf("%-8.2f %-8d %2d/%-9d %-14v\n", drop, extra, ok, trials, mean)
		}
	}
	fmt.Println("\npaper: \"issuing requests for extra fragments proved beneficial due to dropped requests\"")
}
