package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/par"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// runReliability prints E3: the paper's §4.5 availability numbers —
// two-way replication vs rate-1/2 fragmentation at 10% machine
// downtime, closed form and Monte Carlo.
func runReliability(w io.Writer, seed int64, _ *obsink) {
	rng := rand.New(rand.NewSource(seed))
	const p = 0.1
	fmt.Fprintf(w, "machine downtime: %.0f%% (paper: \"a million machines, ten percent of which are currently down\")\n\n", p*100)
	fmt.Fprintf(w, "%-34s %-14s %-12s %-10s\n", "scheme", "P(available)", "monte-carlo", "nines")

	repl := archive.ReplicationAvailability(2, p)
	fmt.Fprintf(w, "%-34s %-14.9f %-12s %-10.2f\n", "2-way replication (same storage)", repl, "-", archive.Nines(repl))

	for _, f := range []int{16, 32, 64} {
		closed := archive.Availability(f, f/2, p)
		mc := archive.AvailabilityMonteCarlo(f, f/2, p, 200000, rng)
		fmt.Fprintf(w, "rate-1/2 erasure, %-3d fragments    %-14.9f %-12.6f %-10.2f\n", f, closed, mc, archive.Nines(closed))
	}
	p16 := archive.Availability(16, 8, p)
	p32 := archive.Availability(32, 16, p)
	fmt.Fprintf(w, "\nunavailability improvement 16 -> 32 fragments: %.0fx (paper: \"another factor of 4000\")\n",
		(1-p16)/(1-p32))
	fmt.Fprintf(w, "paper: replication gives two nines (0.99); 16 fragments give over five nines (0.999994)\n")
}

// runFragments prints E6: reconstruction success and latency vs the
// number of extra fragments requested, under request drop rates.
func runFragments(w io.Writer, seed int64, ob *obsink) {
	const trials = 20
	drops := []float64{0, 0.05, 0.1, 0.2}
	extras := []int{0, 4, 8, 16}
	fmt.Fprintf(w, "archive: rate-1/2, 32 fragments (need 16); per-message drop probability sweep\n\n")
	fmt.Fprintf(w, "%-8s %-8s %-12s %-14s\n", "dropP", "extra", "success", "mean latency")
	// Each (drop, extra, trial) cell is one independent simulation.
	// Flatten the whole grid onto the fork-join pool and aggregate per
	// (drop, extra) afterwards in grid order — the printed table is
	// byte-identical to the serial triple loop at any core count.
	type cell struct {
		ok  bool
		lat time.Duration
		ob  *obsink
	}
	cells := par.Map(len(drops)*len(extras)*trials, 2, func(i int) cell {
		drop := drops[i/(len(extras)*trials)]
		extra := extras[(i/trials)%len(extras)]
		trial := i % trials
		k := sim.NewKernel(seed + int64(trial))
		net := simnet.New(k, simnet.Config{
			BaseLatency:    20 * time.Millisecond,
			LatencyPerUnit: time.Millisecond,
			DropProb:       drop,
		})
		nodes := net.AddRandomNodes(48, 50, 6)
		svc := archive.NewService(net, nodes)
		// Cells run concurrently: each collects into its own sub-sink,
		// merged back below in grid order so dumps are procs-invariant.
		sub := ob.sub()
		net.Instrument(sub.registry(), sub.tracer())
		svc.Instrument(sub.registry(), sub.tracer())
		data := make([]byte, 8192)
		rand.New(rand.NewSource(int64(trial))).Read(data)
		root, err := svc.Archive(data, archive.Config{DataShards: 16, TotalFragments: 32}, nil)
		if err != nil {
			panic(err)
		}
		var out cell
		svc.Retrieve(0, root, extra, 5*time.Second, func(d []byte, err error, l time.Duration) {
			if err == nil && bytes.Equal(d, data) {
				out = cell{ok: true, lat: l}
			}
		})
		k.RunFor(10 * time.Second)
		out.ob = sub
		return out
	})
	for _, c := range cells {
		ob.merge(c.ob)
	}
	for di := range drops {
		for ei := range extras {
			ok := 0
			var latSum time.Duration
			for trial := 0; trial < trials; trial++ {
				if c := cells[(di*len(extras)+ei)*trials+trial]; c.ok {
					ok++
					latSum += c.lat
				}
			}
			mean := time.Duration(0)
			if ok > 0 {
				mean = latSum / time.Duration(ok)
			}
			fmt.Fprintf(w, "%-8.2f %-8d %2d/%-9d %-14v\n", drops[di], extras[ei], ok, trials, mean)
		}
	}
	fmt.Fprintln(w, "\npaper: \"issuing requests for extra fragments proved beneficial due to dropped requests\"")
}
