// Command coverfloor gates per-package test coverage against a
// checked-in floors file, so coverage can only ratchet up.
//
// Usage:
//
//	go test -cover ./... | coverfloor -floors cover/FLOORS.txt
//	go test -cover ./... | coverfloor -floors cover/FLOORS.txt -write [-slack 2.0]
//
// Check mode (default) parses `go test -cover` output from stdin and
// fails if any package listed in the floors file is below its floor or
// missing from the run.  Packages without test files, and new packages
// not yet in the floors file, pass — add them with -write when they
// gain tests.
//
// Write mode records the current measurements minus -slack percentage
// points (a noise margin for coverage that shifts with build tags or
// map iteration in tests) as the new floors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func parseMeasured(r *bufio.Scanner) (map[string]float64, error) {
	measured := make(map[string]float64)
	for r.Scan() {
		m := coverLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad coverage %q: %v", m[2], err)
		}
		measured[m[1]] = pct
	}
	return measured, r.Err()
}

func readFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s: bad line %q", path, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad floor %q: %v", path, fields[1], err)
		}
		floors[fields[0]] = pct
	}
	return floors, sc.Err()
}

func writeFloors(path string, measured map[string]float64, slack float64) error {
	pkgs := make([]string, 0, len(measured))
	for p := range measured {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	var b strings.Builder
	b.WriteString("# Per-package coverage floors (percent of statements).\n")
	b.WriteString("# Regenerate with: make cover-write\n")
	for _, p := range pkgs {
		floor := measured[p] - slack
		if floor < 0 {
			floor = 0
		}
		fmt.Fprintf(&b, "%s %.1f\n", p, floor)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func main() {
	floorsPath := flag.String("floors", "cover/FLOORS.txt", "floors file to check against or write")
	write := flag.Bool("write", false, "record current coverage (minus slack) as the new floors")
	slack := flag.Float64("slack", 2.0, "noise margin subtracted when writing floors, in points")
	flag.Parse()

	measured, err := parseMeasured(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
		os.Exit(1)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "coverfloor: no coverage lines on stdin (pipe `go test -cover ./...`)")
		os.Exit(1)
	}
	if *write {
		if err := writeFloors(*floorsPath, measured, *slack); err != nil {
			fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("coverfloor: wrote %d floors to %s\n", len(measured), *floorsPath)
		return
	}
	floors, err := readFloors(*floorsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v (run `make cover-write` to create it)\n", err)
		os.Exit(1)
	}
	pkgs := make([]string, 0, len(floors))
	for p := range floors {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	failed := 0
	for _, p := range pkgs {
		floor := floors[p]
		got, ok := measured[p]
		switch {
		case !ok:
			fmt.Printf("FAIL %-44s no coverage reported (floor %.1f%%) — package or its tests vanished\n", p, floor)
			failed++
		case got < floor:
			fmt.Printf("FAIL %-44s %.1f%% < floor %.1f%%\n", p, got, floor)
			failed++
		default:
			fmt.Printf("ok   %-44s %.1f%% >= %.1f%%\n", p, got, floor)
		}
	}
	for p := range measured {
		if _, ok := floors[p]; !ok {
			fmt.Printf("new  %-44s %.1f%% (no floor yet; `make cover-write` to ratchet)\n", p, measured[p])
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "coverfloor: %d package(s) under their floor\n", failed)
		os.Exit(1)
	}
}
