package oceanstore

// BenchmarkSoakOpsPerCore is the headline throughput number for the
// sharded-kernel work (ISSUE 7): completed soak operations per second
// of wall clock per core, at 10k and 100k nodes.  One iteration is a
// full closed-loop soak run (reads, Fig-5 writes, creates, churn) with
// world construction excluded from the timer, so the metric tracks
// steady-state event-processing cost rather than setup.  The checked-in
// baseline (bench/BASELINE_PR7.txt) pins the pre-shard numbers;
// `make bench-gate-pr7` fails if ops/sec regresses.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"oceanstore/internal/core"
	"oceanstore/internal/workload"
)

func BenchmarkSoakOpsPerCore(b *testing.B) {
	for _, nodes := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n%d", nodes), func(b *testing.B) {
			const ops = 10_000
			completed := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := core.DefaultSoakConfig(nodes)
				world, err := core.NewSoakWorld(1, cfg)
				if err != nil {
					b.Fatal(err)
				}
				eng := workload.NewEngine(world.Pool.K, workload.EngineConfig{
					Clients:       cfg.Clients,
					Ops:           ops,
					Mix:           workload.Mix{WriteFrac: 0.3, CreateFrac: 0.01},
					Objects:       cfg.Objects,
					ZipfS:         1.1,
					MeanWriteSize: 256,
					ClosedLoop:    true,
					MeanThink:     200 * time.Millisecond,
					RetryBackoff:  time.Second,
				}, world)
				world.StartChurn(time.Minute, 20*time.Second)
				eng.Start()
				b.StartTimer()
				world.Pool.K.RunWhile(func() bool { return !eng.Done() })
				b.StopTimer()
				st := eng.Stats()
				if st.OK == 0 {
					b.Fatal("soak completed no operations")
				}
				completed += st.OK + st.Failed
			}
			perCore := float64(completed) / b.Elapsed().Seconds() / float64(runtime.GOMAXPROCS(0))
			b.ReportMetric(perCore, "ops/s/core")
			b.ReportMetric(float64(completed)/float64(b.N), "ops")
		})
	}
}
