// Package oceanstore is a from-scratch Go implementation of
// OceanStore, the global-scale persistent storage architecture of
// Kubiatowicz et al. (ASPLOS 2000), running over a deterministic
// discrete-event network simulation.
//
// OceanStore stores persistent objects named by self-certifying GUIDs
// on an infrastructure of untrusted servers.  Only clients hold keys:
// all data in the infrastructure is ciphertext, yet servers still
// evaluate update predicates (compare-version/size/block, encrypted
// search) and apply block-level actions.  Every object has a small
// primary tier of replicas that serialises updates with Byzantine
// agreement and a larger set of secondary replicas kept fresh through
// dissemination trees and epidemic anti-entropy.  Committed versions
// are erasure-coded into self-verifying fragments and dispersed across
// administrative domains (deep archival storage).  Replica location
// uses attenuated Bloom filters nearby and a Plaxton-style mesh
// globally, and introspective modules observe usage to drive
// clustering, prefetching and replica management.
//
// # Quick start
//
//	world := oceanstore.NewWorld(42, oceanstore.DefaultConfig())
//	alice := world.NewClient("alice")
//	doc, _ := alice.Create("notes", []byte("hello"))
//	sess := alice.NewSession(oceanstore.ACID)
//	sess.Append(doc, []byte(" world"))
//	world.Run(30 * time.Second) // advance simulated time
//	data, _ := sess.Read(doc)   // "hello world"
//
// The package re-exports the client surface of internal/core; the
// substrate packages (internal/plaxton, internal/erasure, ...) carry
// the individual mechanisms and their experiments.
package oceanstore

import (
	"time"

	"oceanstore/internal/acl"
	"oceanstore/internal/core"
	"oceanstore/internal/crypt"
	"oceanstore/internal/guid"
	"oceanstore/internal/obs"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
)

// GUID names every entity in the system (paper §4.1).
type GUID = guid.GUID

// UpdateID identifies one submitted update, as seen by session commit
// and abort callbacks.
type UpdateID = update.UpdateID

// Config sizes a simulated deployment; see core.PoolConfig.
type Config = core.PoolConfig

// DefaultConfig is a 64-node, 4-domain pool with WAN-like latencies.
func DefaultConfig() Config { return core.DefaultPoolConfig() }

// Session guarantees (Bayou-style, §2) and the strong-session preset.
const (
	ReadYourWrites    = core.ReadYourWrites
	MonotonicReads    = core.MonotonicReads
	WritesFollowReads = core.WritesFollowReads
	MonotonicWrites   = core.MonotonicWrites
	ReadCommitted     = core.ReadCommitted
	ACID              = core.ACID
)

// Guarantees selects a session's consistency level.
type Guarantees = core.Guarantees

// Session is a sequence of guaranteed reads and writes (§4.6).
type Session = core.Session

// Client is a trusted endpoint holding keys and signing updates.
type Client = core.Client

// FS is the Unix-like file-system facade.
type FS = core.FS

// Tx is the transactional facade.
type Tx = core.Tx

// Transaction states.
const (
	TxPending   = core.TxPending
	TxSubmitted = core.TxSubmitted
	TxCommitted = core.TxCommitted
	TxAborted   = core.TxAborted
)

// World is a simulated OceanStore deployment plus its virtual clock.
type World struct {
	// Pool exposes the underlying deployment for advanced use
	// (replica management, the location mesh, the archival service).
	Pool *core.Pool
	next simnet.NodeID
}

// NewWorld creates a deployment.  The seed fixes all randomness: the
// same seed reproduces the same run exactly.
func NewWorld(seed int64, cfg Config) *World {
	p := core.NewPool(seed, cfg)
	return &World{Pool: p, next: simnet.NodeID(cfg.Nodes - 1)}
}

// NewClient attaches a named client to the pool at a distinct node
// (clients occupy nodes from the top of the range downwards).
func (w *World) NewClient(name string) *Client {
	_ = name // names are a convenience; identity is the key pair
	c := w.Pool.NewClient(w.next, crypt.NewSigner(w.Pool.K.Rand()))
	w.next--
	return c
}

// Metrics is a deterministic registry of counters, gauges and
// simulated-time histograms keyed by (node, layer, name); see
// internal/obs for the determinism contract.
type Metrics = obs.Registry

// Tracer is a bounded per-message trace ring with JSONL export.
type Tracer = obs.Tracer

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTracer creates a trace ring holding up to capacity events
// (capacity <= 0 selects the default).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// Instrument attaches observability to the deployment: every layer —
// network, location, agreement, dissemination, archival — counts into m
// and traces into t.  Either may be nil.  Instrumentation never draws
// randomness or alters behaviour, so an instrumented run follows the
// same trajectory as a bare one with the same seed.
func (w *World) Instrument(m *Metrics, t *Tracer) { w.Pool.Instrument(m, t) }

// Run advances simulated time, letting updates commit, trees push,
// gossip spread, and repairs run.
func (w *World) Run(d time.Duration) { w.Pool.Run(d) }

// Now returns the current virtual time.
func (w *World) Now() time.Duration { return w.Pool.K.Now() }

// AddReplica creates a floating secondary replica of obj on a pool
// node — promiscuous caching under explicit control.
func (w *World) AddReplica(obj GUID, node int) error {
	return w.Pool.AddReplica(obj, simnet.NodeID(node))
}

// RemoveReplica retires a floating replica.
func (w *World) RemoveReplica(obj GUID, node int) error {
	return w.Pool.RemoveReplica(obj, simnet.NodeID(node))
}

// Locate finds the closest replica of obj from a node via the global
// location mesh.
func (w *World) Locate(from int, obj GUID) (int, error) {
	n, err := w.Pool.Locate(simnet.NodeID(from), obj)
	return int(n), err
}

// ACL types for writer restriction (§4.2).
type (
	// ACL lists signing keys granted privileges on an object.
	ACL = acl.ACL
	// ACLEntry grants one privilege to one key.
	ACLEntry = acl.Entry
)

// Privileges.
const (
	PrivWrite = acl.PrivWrite
	PrivAdmin = acl.PrivAdmin
)

// SetACL re-certifies an object's ACL (the owner revokes or grants
// writers by issuing a higher-serial certificate).
func (w *World) SetACL(owner *Client, obj GUID, a *ACL, serial uint64) error {
	return w.Pool.SetACL(owner.Signer, obj, a, serial)
}
