package oceanstore

// Benchmarks, one per experiment in DESIGN.md §3 plus the ablations of
// §4.  Wall-clock throughput is reported by the usual ns/op; the
// paper's quantities (normalized byte cost, virtual latency, hop
// counts, hit rates) are attached as custom metrics so `go test
// -bench` regenerates each figure's headline numbers.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/bloom"
	"oceanstore/internal/byz"
	"oceanstore/internal/crypt"
	"oceanstore/internal/erasure"
	"oceanstore/internal/guid"
	"oceanstore/internal/introspect"
	"oceanstore/internal/merkle"
	"oceanstore/internal/object"
	"oceanstore/internal/plaxton"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
)

// newTier builds an (n, f) primary tier plus one client on uniform
// 100 ms links.
func newTier(n, f int, seed int64) (*sim.Kernel, *simnet.Network, *byz.Group, simnet.NodeID) {
	k := sim.NewKernel(seed)
	net := simnet.New(k, simnet.Config{BaseLatency: 100 * time.Millisecond})
	var nodes []simnet.NodeID
	for i := 0; i < n; i++ {
		nodes = append(nodes, net.AddNode(0, 0).ID)
	}
	client := net.AddNode(0, 0).ID
	g, err := byz.NewGroup(net, nodes, f)
	if err != nil {
		panic(err)
	}
	return k, net, g, client
}

// BenchmarkFig6UpdateCost regenerates Figure 6's series: one committed
// update per iteration; the normalized byte cost b/(u·n) is reported
// per tier and update size.
func BenchmarkFig6UpdateCost(b *testing.B) {
	for _, tier := range [][2]int{{2, 7}, {3, 10}, {4, 13}} {
		m, n := tier[0], tier[1]
		for _, u := range []int{4 << 10, 100 << 10} {
			b.Run(fmt.Sprintf("m%d_n%d_u%dk", m, n, u>>10), func(b *testing.B) {
				var norm float64
				for i := 0; i < b.N; i++ {
					k, net, g, client := newTier(n, m, int64(i))
					net.ResetStats()
					done := false
					g.Submit(client, byz.Request{
						ID: guid.FromData([]byte(fmt.Sprint(i, u))), Payload: "u", Size: u,
					}, func(byz.Result) { done = true })
					k.RunFor(20 * time.Second)
					if !done {
						b.Fatal("update did not commit")
					}
					norm = float64(net.Stats().BytesSent) / float64(u*n)
				}
				b.ReportMetric(norm, "normcost")
			})
		}
	}
}

// BenchmarkE2CommitLatency reports the virtual commit latency under
// 100 ms WAN messages (paper: six phases, <1 s).
func BenchmarkE2CommitLatency(b *testing.B) {
	for _, tier := range [][2]int{{2, 7}, {4, 13}} {
		m, n := tier[0], tier[1]
		b.Run(fmt.Sprintf("m%d_n%d", m, n), func(b *testing.B) {
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				k, _, g, client := newTier(n, m, int64(i))
				g.Submit(client, byz.Request{
					ID: guid.FromData([]byte(fmt.Sprint("lat", i))), Payload: "u", Size: 4096,
				}, func(r byz.Result) { lat = r.Latency })
				k.RunFor(20 * time.Second)
			}
			b.ReportMetric(float64(lat.Milliseconds()), "virtual-ms")
		})
	}
}

// BenchmarkE3Reliability evaluates the §4.5 availability formula and a
// Monte-Carlo validation; the availability is reported as nines.
func BenchmarkE3Reliability(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.Run("closed_form_f32", func(b *testing.B) {
		var p float64
		for i := 0; i < b.N; i++ {
			p = archive.Availability(32, 16, 0.1)
		}
		b.ReportMetric(archive.Nines(p), "nines")
	})
	b.Run("monte_carlo_f32", func(b *testing.B) {
		var p float64
		for i := 0; i < b.N; i++ {
			p = archive.AvailabilityMonteCarlo(32, 16, 0.1, 10000, rng)
		}
		b.ReportMetric(p, "availability")
	})
}

// BenchmarkE4BloomLocation runs probabilistic queries over a 256-node
// torus and reports the success rate within the filter horizon.
func BenchmarkE4BloomLocation(b *testing.B) {
	const side = 16
	adj := make([][]int, side*side)
	at := func(x, y int) int { return ((y+side)%side)*side + (x+side)%side }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			adj[at(x, y)] = []int{at(x+1, y), at(x-1, y), at(x, y+1), at(x, y-1)}
		}
	}
	r := rand.New(rand.NewSource(2))
	loc := bloom.NewLocator(adj, 4, 16384, 4)
	var objs []guid.GUID
	for i := 0; i < 100; i++ {
		g := guid.Random(r)
		loc.Place(r.Intn(len(adj)), g)
		objs = append(objs, g)
	}
	loc.Rebuild()
	b.ResetTimer()
	found, within := 0, 0
	for i := 0; i < b.N; i++ {
		g := objs[i%len(objs)]
		start := r.Intn(len(adj))
		if d := loc.ShortestDistance(start, g); d > 4 {
			continue
		}
		within++
		if res := loc.Query(start, g, 16, r); res.Found {
			found++
		}
	}
	if within > 0 {
		b.ReportMetric(float64(found)/float64(within), "success")
	}
}

// BenchmarkE5PlaxtonRouting measures mesh routing and reports average
// hops (paper: O(log16 n)).
func BenchmarkE5PlaxtonRouting(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(3))
			ids := make([]guid.GUID, n)
			pos := make([][2]float64, n)
			for i := range ids {
				ids[i] = guid.Random(r)
				pos[i] = [2]float64{r.Float64() * 100, r.Float64() * 100}
			}
			mesh := plaxton.New(ids, func(a, c int) float64 {
				dx, dy := pos[a][0]-pos[c][0], pos[a][1]-pos[c][1]
				return dx*dx + dy*dy
			})
			b.ResetTimer()
			hops := 0
			for i := 0; i < b.N; i++ {
				res, err := mesh.RouteToRoot(i%n, guid.Random(r))
				if err != nil {
					b.Fatal(err)
				}
				hops += res.Hops()
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops")
		})
	}
}

// BenchmarkE6Reconstruction reconstructs archives under 10% message
// loss with and without extra fragment requests, reporting the virtual
// retrieval latency.
func BenchmarkE6Reconstruction(b *testing.B) {
	for _, extra := range []int{0, 8} {
		b.Run(fmt.Sprintf("extra%d", extra), func(b *testing.B) {
			var lat time.Duration
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(int64(i))
				net := simnet.New(k, simnet.Config{
					BaseLatency: 20 * time.Millisecond, LatencyPerUnit: time.Millisecond, DropProb: 0.1,
				})
				nodes := net.AddRandomNodes(48, 50, 6)
				svc := archive.NewService(net, nodes)
				data := make([]byte, 4096)
				rand.New(rand.NewSource(int64(i))).Read(data)
				root, err := svc.Archive(data, archive.Config{DataShards: 16, TotalFragments: 32}, nil)
				if err != nil {
					b.Fatal(err)
				}
				svc.Retrieve(0, root, extra, 5*time.Second, func(d []byte, err error, l time.Duration) {
					if err == nil && bytes.Equal(d, data) {
						lat = l
					}
				})
				k.RunFor(10 * time.Second)
			}
			b.ReportMetric(float64(lat.Milliseconds()), "virtual-ms")
		})
	}
}

// BenchmarkE7Prefetch trains and queries the Markov prefetcher on a
// noisy correlated trace, reporting the hit rate.
func BenchmarkE7Prefetch(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	A, B, C, D, X := gobj(1), gobj(2), gobj(3), gobj(4), gobj(5)
	var trace []guid.GUID
	for len(trace) < 600 {
		if r.Float64() < 0.3 {
			trace = append(trace, gobj(byte(50+r.Intn(150))))
			continue
		}
		if r.Float64() < 0.5 {
			trace = append(trace, A, B, C)
		} else {
			trace = append(trace, X, B, D)
		}
	}
	b.ResetTimer()
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = introspect.HitRate(introspect.NewPrefetcher(2), trace, 1, 60)
	}
	b.ReportMetric(rate, "hitrate")
}

func gobj(x byte) guid.GUID { return guid.FromData([]byte{x}) }

// BenchmarkE8CiphertextOps measures the Figure 4 insert (append two
// re-encrypted blocks + replace one with a pointer block).
func BenchmarkE8CiphertextOps(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	key := crypt.NewBlockKey(r)
	base := object.NewObject(bytes.Repeat([]byte("x"), 64<<10), 4096, key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ed, err := object.NewEditor(base, key)
		if err != nil {
			b.Fatal(err)
		}
		ops, err := ed.InsertBefore(8, bytes.Repeat([]byte("y"), 4096))
		if err != nil {
			b.Fatal(err)
		}
		v := base.Clone(0)
		for _, op := range ops {
			if err := v.ApplyOp(op); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecAblation compares the archival codecs (DESIGN.md §4):
// Reed-Solomon (MDS, GF(2^8) math) vs the Tornado-style code (XOR +
// peeling, slight overhead).
func BenchmarkCodecAblation(b *testing.B) {
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(6)).Read(data)
	codecs := []struct {
		name string
		mk   func() erasure.Codec
	}{
		{"reed-solomon_16_32", func() erasure.Codec {
			c, _ := erasure.NewReedSolomon(16, 32)
			return c
		}},
		{"cauchy-rs_16_32", func() erasure.Codec {
			c, _ := erasure.NewCauchyReedSolomon(16, 32)
			return c
		}},
		{"tornado_16_32", func() erasure.Codec {
			c, _ := erasure.NewTornado(16, 32, 7)
			return c
		}},
	}
	for _, tc := range codecs {
		b.Run("encode_"+tc.name, func(b *testing.B) {
			c := tc.mk()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decode_"+tc.name, func(b *testing.B) {
			c := tc.mk()
			frags, _ := c.Encode(data)
			// Drop a quarter of the fragments to force real decoding.
			sub := append([]erasure.Fragment(nil), frags[8:]...)
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(sub, len(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMerkleFragmentVerify measures per-fragment self-verification.
func BenchmarkMerkleFragmentVerify(b *testing.B) {
	frags := make([][]byte, 32)
	r := rand.New(rand.NewSource(7))
	for i := range frags {
		frags[i] = make([]byte, 4096)
		r.Read(frags[i])
	}
	tree := merkle.Build(frags)
	proof := tree.Proof(5)
	root := tree.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !merkle.Verify(frags[5], 5, 32, proof, root) {
			b.Fatal("verify failed")
		}
	}
}

// BenchmarkSearchOnCiphertext measures the SWP-style trapdoor scan.
func BenchmarkSearchOnCiphertext(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	sk := crypt.NewSearchKey(crypt.NewBlockKey(r))
	words := make([]string, 1000)
	for i := range words {
		words[i] = fmt.Sprintf("word%d", r.Intn(200))
	}
	idx := sk.BuildIndex(words)
	td := sk.Trapdoor("word7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(td)
	}
}

// BenchmarkEndToEndUpdate drives a full pool update through the public
// API: Byzantine commitment, dissemination, archival coupling.
func BenchmarkEndToEndUpdate(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Nodes = 32
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	world := NewWorld(9, cfg)
	alice := world.NewClient("alice")
	doc, err := alice.Create("bench", []byte("x"))
	if err != nil {
		b.Fatal(err)
	}
	sess := alice.NewSession(ACID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Append(doc, []byte("y")); err != nil {
			b.Fatal(err)
		}
		world.Run(30 * time.Second)
	}
}
