# Tier-1 gate: every change must keep `make check` green.
GO ?= go

# Packages touched by the fork-join parallelism (PR 3): the -race pass
# over these runs with GOMAXPROCS=4 so the pool actually forks even on
# small CI machines.
PAR_PKGS = ./internal/par/ ./internal/erasure/ ./internal/archive/ \
	./internal/merkle/ ./internal/bloom/ ./internal/fault/ ./internal/obs/ \
	./internal/sim/ ./internal/simnet/

.PHONY: check vet vet-rand build test race race-par fuzz-corpora bench bench-smoke bench-json bench-gate bench-json-pr7 bench-gate-pr7 bench-mem bench-json-pr8 cover cover-write soak-smoke scenarios-smoke blobstore-smoke introspect-smoke

check: vet vet-rand build race race-par fuzz-corpora bench-smoke cover soak-smoke scenarios-smoke blobstore-smoke introspect-smoke bench-gate-pr7 bench-mem

vet:
	$(GO) vet ./...

# Determinism lint: package-global math/rand draws (rand.Intn, rand.Read,
# ...) bypass the simulator's seeded sources and make runs depend on
# process-global state.  Every draw must come through an injected
# *rand.Rand (kernel RNG or a per-experiment seeded source); only the
# simulator core under internal/sim may touch the global generator.
vet-rand:
	@bad=$$(grep -rnE 'rand\.(Intn|Int31n?|Int63n?|Int|Uint32|Uint64|Float32|Float64|ExpFloat64|NormFloat64|Perm|Shuffle|Read|Seed)\(' \
		--include '*.go' . | grep -v '^\./internal/sim/' || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-rand: global math/rand draw outside internal/sim:"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the parallel kernels and sweep drivers with enough procs
# that par.Do really runs concurrent workers.
race-par:
	GOMAXPROCS=4 $(GO) test -count=1 -race $(PAR_PKGS)

# Replay the checked-in fuzz seed corpora (testdata/fuzz/...) without
# fuzzing — regression mode.  `go test -fuzz=FuzzRS ./internal/erasure`
# explores beyond them.
fuzz-corpora:
	$(GO) test -run 'Fuzz' ./internal/erasure/

bench:
	$(GO) test -bench . -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic, without paying measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Coverage ratchet: per-package floors live in cover/FLOORS.txt; the
# gate fails if any package regresses below its floor.  After raising
# coverage, move the floors up with `make cover-write`.
cover:
	$(GO) test -cover ./... | $(GO) run ./cmd/coverfloor -floors cover/FLOORS.txt

cover-write:
	$(GO) test -cover ./... | $(GO) run ./cmd/coverfloor -floors cover/FLOORS.txt -write

# Determinism gate for the soak engine at scale: the same seeded
# 100k-node soak must emit byte-identical metrics and summary at
# GOMAXPROCS 1 and 4, and at any kernel shard count (-shards 1 vs the
# default region-scaled sharding).  The run also asserts a peak-RSS
# budget (the mem line osexp prints to stderr): the zero-alloc
# messaging work holds 100k nodes + 10k ops under ~265 MB, and the
# budget fails the gate if resident memory doubles.  The full-scale
# run is
#   osexp -metrics soak.txt soak 1 -nodes 1000000 -ops 1000000
SOAK_RSS_BUDGET_MB ?= 512
soak-smoke:
	@$(GO) build -o /tmp/osexp-smoke ./cmd/osexp; \
	tmp=$$(mktemp -d); \
	GOMAXPROCS=1 /tmp/osexp-smoke -metrics $$tmp/m1.txt soak 1 -nodes 100000 -ops 10000 > $$tmp/out1.txt 2> $$tmp/mem1.txt || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/m4.txt soak 1 -nodes 100000 -ops 10000 > $$tmp/out4.txt || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/ms1.txt soak 1 -nodes 100000 -ops 10000 -shards 1 > $$tmp/outs1.txt || exit 1; \
	if ! cmp -s $$tmp/m1.txt $$tmp/m4.txt; then echo "soak-smoke: metrics differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/out1.txt $$tmp/out4.txt; then echo "soak-smoke: summaries differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/m4.txt $$tmp/ms1.txt; then echo "soak-smoke: metrics differ across shard counts"; exit 1; fi; \
	if ! cmp -s $$tmp/out4.txt $$tmp/outs1.txt; then echo "soak-smoke: summaries differ across shard counts"; exit 1; fi; \
	rss=$$(sed -n 's/.*peak RSS \([0-9.]*\) MB.*/\1/p' $$tmp/mem1.txt); \
	if [ -z "$$rss" ]; then echo "soak-smoke: no peak RSS line on stderr"; exit 1; fi; \
	if awk "BEGIN{exit !($$rss > $(SOAK_RSS_BUDGET_MB))}"; then \
		echo "soak-smoke: peak RSS $$rss MB exceeds budget $(SOAK_RSS_BUDGET_MB) MB"; exit 1; fi; \
	rm -rf $$tmp; \
	echo "soak-smoke: 100k nodes byte-identical at GOMAXPROCS 1 and 4 and at shards 1 vs default; peak RSS $$rss MB within $(SOAK_RSS_BUDGET_MB) MB"

# Real-I/O gate for the blobstore backend (PR 9): a disk-backed
# 1k-node soak with the scrub/repair scheduler on, volumes in a temp
# dir.  The run must be byte-identical (metrics and summary) at
# GOMAXPROCS 1 and 4, and — the apples-to-apples guarantee behind the
# memory-vs-disk ablation — identical to the same soak on the
# in-memory backend.  Real I/O may change wall-clock, never the
# trajectory.
blobstore-smoke:
	@$(GO) build -o /tmp/osexp-smoke ./cmd/osexp; \
	tmp=$$(mktemp -d); \
	GOMAXPROCS=1 /tmp/osexp-smoke -metrics $$tmp/m1.txt soak 1 -nodes 1000 -ops 100000 -backend disk -storedir $$tmp/vols1 > $$tmp/out1.txt 2> $$tmp/err1.txt || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/m4.txt soak 1 -nodes 1000 -ops 100000 -backend disk -storedir $$tmp/vols4 > $$tmp/out4.txt 2> /dev/null || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/mm.txt soak 1 -nodes 1000 -ops 100000 -backend mem > $$tmp/outm.txt 2> /dev/null || exit 1; \
	if ! cmp -s $$tmp/m1.txt $$tmp/m4.txt; then echo "blobstore-smoke: disk metrics differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/out1.txt $$tmp/out4.txt; then echo "blobstore-smoke: disk summaries differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/m1.txt $$tmp/mm.txt; then echo "blobstore-smoke: metrics differ between mem and disk backends"; exit 1; fi; \
	if ! cmp -s $$tmp/out1.txt $$tmp/outm.txt; then echo "blobstore-smoke: summaries differ between mem and disk backends"; exit 1; fi; \
	if ! grep -q '^archival maintenance: scrubbed' $$tmp/out1.txt; then \
		echo "blobstore-smoke: no scrub/repair line in the report"; cat $$tmp/out1.txt; exit 1; fi; \
	if ! grep -q '^blobstore: ' $$tmp/err1.txt; then \
		echo "blobstore-smoke: no real-I/O rail on stderr"; cat $$tmp/err1.txt; exit 1; fi; \
	rm -rf $$tmp; \
	echo "blobstore-smoke: 1k-node disk soak byte-identical at GOMAXPROCS 1 and 4 and to the mem backend"

# Introspection determinism gate (PR 10): a 10k-node flash-crowd soak
# with the replica controller on must emit byte-identical metrics and
# summary at GOMAXPROCS 1 and 4 and at shards 1 vs the default
# region-scaled sharding — the control loop's EWMA folds, sorted
# candidate passes, and modeled read queues draw nothing from the
# wall clock or scheduler interleaving.  The report must carry the
# introspection and read-latency rails the flash ablation greps for.
introspect-smoke:
	@$(GO) build -o /tmp/osexp-smoke ./cmd/osexp; \
	tmp=$$(mktemp -d); \
	args="soak 1 -nodes 10000 -ops 20000 -introspect -flash 2m"; \
	GOMAXPROCS=1 /tmp/osexp-smoke -metrics $$tmp/m1.txt $$args > $$tmp/out1.txt 2> /dev/null || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/m4.txt $$args > $$tmp/out4.txt 2> /dev/null || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/ms1.txt $$args -shards 1 > $$tmp/outs1.txt 2> /dev/null || exit 1; \
	if ! cmp -s $$tmp/m1.txt $$tmp/m4.txt; then echo "introspect-smoke: metrics differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/out1.txt $$tmp/out4.txt; then echo "introspect-smoke: summaries differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/m4.txt $$tmp/ms1.txt; then echo "introspect-smoke: metrics differ across shard counts"; exit 1; fi; \
	if ! cmp -s $$tmp/out4.txt $$tmp/outs1.txt; then echo "introspect-smoke: summaries differ across shard counts"; exit 1; fi; \
	if ! grep -q '^introspect: ' $$tmp/out1.txt; then \
		echo "introspect-smoke: no introspection rail in the report"; cat $$tmp/out1.txt; exit 1; fi; \
	if ! grep -q '^read latency: ' $$tmp/out1.txt; then \
		echo "introspect-smoke: no read-latency rail in the report"; cat $$tmp/out1.txt; exit 1; fi; \
	if ! grep -q 'promotes' $$tmp/out1.txt; then \
		echo "introspect-smoke: controller made no decisions"; cat $$tmp/out1.txt; exit 1; fi; \
	rm -rf $$tmp; \
	echo "introspect-smoke: 10k-node flash soak byte-identical at GOMAXPROCS 1 and 4 and at shards 1 vs default"

# Adversarial gate: run the whole scenario catalogue — every defense
# armed (invariants must hold) and switched off (invariants must
# break) — and fail on any invariant failure.  Also checks the audited
# run's metrics dump is byte-identical at GOMAXPROCS 1 and 4.
scenarios-smoke:
	@$(GO) build -o /tmp/osexp-smoke ./cmd/osexp; \
	tmp=$$(mktemp -d); \
	GOMAXPROCS=1 /tmp/osexp-smoke -metrics $$tmp/m1.txt scenarios 1 > $$tmp/out1.txt || exit 1; \
	GOMAXPROCS=4 /tmp/osexp-smoke -metrics $$tmp/m4.txt scenarios 1 > $$tmp/out4.txt || exit 1; \
	if ! grep -q '^invariant failures: 0$$' $$tmp/out1.txt; then \
		echo "scenarios-smoke: invariant failures:"; cat $$tmp/out1.txt; exit 1; fi; \
	if ! cmp -s $$tmp/m1.txt $$tmp/m4.txt; then echo "scenarios-smoke: metrics differ across GOMAXPROCS"; exit 1; fi; \
	if ! cmp -s $$tmp/out1.txt $$tmp/out4.txt; then echo "scenarios-smoke: reports differ across GOMAXPROCS"; exit 1; fi; \
	rm -rf $$tmp; \
	echo "scenarios-smoke: all invariants hold armed, all break disarmed; dumps byte-identical at GOMAXPROCS 1 and 4"

# Full benchmark pass rendered as JSON against the checked-in baseline.
# Refresh after performance work: `make bench-json` then commit the
# updated BENCH_PR3.json (and a new bench/BASELINE_*.txt if the baseline
# itself should move forward).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.txt -o BENCH_PR3.json

# Regression gate: fail if any benchmark is more than GATE_PCT percent
# slower than the checked-in baseline.  Single-run benchmarks are noisy;
# the default threshold is deliberately loose.
GATE_PCT ?= 30
bench-gate:
	$(GO) test -run '^$$' -bench . -benchmem ./... \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.txt -gate $(GATE_PCT) -o /dev/null

# PR 7 scale benchmark: end-to-end soak throughput at 10k and 100k
# nodes against the pre-sharding baseline pinned in
# bench/BASELINE_PR7.txt.  The gate fails if throughput falls back
# toward the pre-PR numbers; BENCH_PR7.json records the speedup.
bench-json-pr7:
	$(GO) test -run '^$$' -bench SoakOpsPerCore -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR7.txt -o BENCH_PR7.json

bench-gate-pr7:
	$(GO) test -run '^$$' -bench SoakOpsPerCore -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR7.txt -gate $(GATE_PCT) -o /dev/null

# Memory-regression gate (PR 8): the message-path and per-commit
# benchmarks run with -benchmem and their allocs/op are compared to
# bench/BASELINE_PR8.txt.  The messaging benches are pinned at ZERO
# allocs/op — any new allocation on those paths trips the gate at any
# threshold (0 baseline + nonzero current = infinite regression).
bench-mem:
	$(GO) test -run '^$$' -bench 'MsgUnbatched|MsgBatched|VersionGUID|BlockEncrypt' -benchmem . \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR8.txt -gate-allocs 10 -o /dev/null

# PR 8 scale benchmark: refresh BENCH_PR8.json — soak throughput at 10k
# and 100k nodes (vs the PR 7 pre-shard baseline) with allocs/op from
# the memory benches alongside.
bench-json-pr8:
	$(GO) test -run '^$$' -bench 'SoakOpsPerCore|MsgUnbatched|MsgBatched|VersionGUID|BlockEncrypt' -benchmem -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR7.txt -o BENCH_PR8.json
