# Tier-1 gate: every change must keep `make check` green.
GO ?= go

.PHONY: check vet build test race fuzz-corpora bench bench-smoke bench-json

check: vet build race fuzz-corpora bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replay the checked-in fuzz seed corpora (testdata/fuzz/...) without
# fuzzing — regression mode.  `go test -fuzz=FuzzRS ./internal/erasure`
# explores beyond them.
fuzz-corpora:
	$(GO) test -run 'Fuzz' ./internal/erasure/

bench:
	$(GO) test -bench . -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic, without paying measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full benchmark pass rendered as JSON against the checked-in baseline.
# Refresh after performance work: `make bench-json` then commit the
# updated BENCH_PR2.json (and a new bench/BASELINE_*.txt if the baseline
# itself should move forward).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR2.txt -o BENCH_PR2.json
