# Tier-1 gate: every change must keep `make check` green.
GO ?= go

# Packages touched by the fork-join parallelism (PR 3): the -race pass
# over these runs with GOMAXPROCS=4 so the pool actually forks even on
# small CI machines.
PAR_PKGS = ./internal/par/ ./internal/erasure/ ./internal/archive/ \
	./internal/merkle/ ./internal/bloom/ ./internal/fault/ ./internal/obs/

.PHONY: check vet vet-rand build test race race-par fuzz-corpora bench bench-smoke bench-json bench-gate

check: vet vet-rand build race race-par fuzz-corpora bench-smoke

vet:
	$(GO) vet ./...

# Determinism lint: package-global math/rand draws (rand.Intn, rand.Read,
# ...) bypass the simulator's seeded sources and make runs depend on
# process-global state.  Every draw must come through an injected
# *rand.Rand (kernel RNG or a per-experiment seeded source); only the
# simulator core under internal/sim may touch the global generator.
vet-rand:
	@bad=$$(grep -rnE 'rand\.(Intn|Int31n?|Int63n?|Int|Uint32|Uint64|Float32|Float64|ExpFloat64|NormFloat64|Perm|Shuffle|Read|Seed)\(' \
		--include '*.go' . | grep -v '^\./internal/sim/' || true); \
	if [ -n "$$bad" ]; then \
		echo "vet-rand: global math/rand draw outside internal/sim:"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-check the parallel kernels and sweep drivers with enough procs
# that par.Do really runs concurrent workers.
race-par:
	GOMAXPROCS=4 $(GO) test -count=1 -race $(PAR_PKGS)

# Replay the checked-in fuzz seed corpora (testdata/fuzz/...) without
# fuzzing — regression mode.  `go test -fuzz=FuzzRS ./internal/erasure`
# explores beyond them.
fuzz-corpora:
	$(GO) test -run 'Fuzz' ./internal/erasure/

bench:
	$(GO) test -bench . -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or panic, without paying measurement time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Full benchmark pass rendered as JSON against the checked-in baseline.
# Refresh after performance work: `make bench-json` then commit the
# updated BENCH_PR3.json (and a new bench/BASELINE_*.txt if the baseline
# itself should move forward).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.txt -o BENCH_PR3.json

# Regression gate: fail if any benchmark is more than GATE_PCT percent
# slower than the checked-in baseline.  Single-run benchmarks are noisy;
# the default threshold is deliberately loose.
GATE_PCT ?= 30
bench-gate:
	$(GO) test -run '^$$' -bench . -benchmem ./... \
		| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.txt -gate $(GATE_PCT) -o /dev/null
