# Tier-1 gate: every change must keep `make check` green.
GO ?= go

.PHONY: check vet build test race fuzz-corpora bench

check: vet build race fuzz-corpora

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replay the checked-in fuzz seed corpora (testdata/fuzz/...) without
# fuzzing — regression mode.  `go test -fuzz=FuzzRS ./internal/erasure`
# explores beyond them.
fuzz-corpora:
	$(GO) test -run 'Fuzz' ./internal/erasure/

bench:
	$(GO) test -bench . -benchmem ./...
