package oceanstore_test

import (
	"fmt"
	"time"

	"oceanstore"
	"oceanstore/internal/archive"
)

func exampleConfig() oceanstore.Config {
	cfg := oceanstore.DefaultConfig()
	cfg.Nodes = 24
	cfg.BlockSize = 64
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	return cfg
}

// The minimal OceanStore workflow: create, update, read.
func Example() {
	world := oceanstore.NewWorld(42, exampleConfig())
	alice := world.NewClient("alice")

	doc, _ := alice.Create("notes", []byte("hello"))
	sess := alice.NewSession(oceanstore.ACID)
	sess.Append(doc, []byte(" world"))
	world.Run(time.Minute)

	data, _ := sess.Read(doc)
	fmt.Println(string(data))
	// Output: hello world
}

// Sharing is cryptographic: read access travels as a key, write access
// as an owner-certified ACL entry.
func ExampleWorld_SetACL() {
	world := oceanstore.NewWorld(7, exampleConfig())
	alice := world.NewClient("alice")
	bob := world.NewClient("bob")

	doc, _ := alice.Create("shared", []byte("a"))
	alice.GrantRead(doc, bob)
	world.SetACL(alice, doc, &oceanstore.ACL{Entries: []oceanstore.ACLEntry{
		{PubKey: bob.Signer.Public(), Priv: oceanstore.PrivWrite},
	}}, 2)

	bob.NewSession(oceanstore.ACID).Append(doc, []byte("b"))
	world.Run(time.Minute)

	data, _ := alice.NewSession(oceanstore.ACID).Read(doc)
	fmt.Println(string(data))
	// Output: ab
}

// Transactions map onto the paper's ACID-shaped updates: the guard
// checks the read set, the actions apply the write set, and a losing
// racer aborts instead of clobbering.
func ExampleSession_Begin() {
	world := oceanstore.NewWorld(9, exampleConfig())
	alice := world.NewClient("alice")
	acct, _ := alice.Create("acct", []byte("balance=100"))
	sess := alice.NewSession(oceanstore.ACID)

	tx1, _ := sess.Begin(acct)
	tx2, _ := sess.Begin(acct)
	tx1.Replace(0, []byte("balance=150"))
	tx2.Replace(0, []byte("balance=050"))
	tx1.Commit()
	tx2.Commit()
	world.Run(2 * time.Minute)

	fmt.Println("tx1 committed:", tx1.Status() == oceanstore.TxCommitted)
	fmt.Println("tx2 aborted:  ", tx2.Status() == oceanstore.TxAborted)
	data, _ := sess.Read(acct)
	fmt.Println(string(data))
	// Output:
	// tx1 committed: true
	// tx2 aborted:   true
	// balance=150
}
