package oceanstore

import (
	"testing"
	"time"

	"oceanstore/internal/archive"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Nodes = 24
	cfg.Ring.Archive = archive.Config{DataShards: 4, TotalFragments: 8}
	cfg.BlockSize = 64
	return cfg
}

func TestPublicAPIQuickstart(t *testing.T) {
	world := NewWorld(42, testConfig())
	alice := world.NewClient("alice")
	doc, err := alice.Create("notes", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	sess := alice.NewSession(ACID)
	if _, err := sess.Append(doc, []byte(" world")); err != nil {
		t.Fatal(err)
	}
	world.Run(30 * time.Second)
	data, err := sess.Read(doc)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read %q err %v", data, err)
	}
	if world.Now() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() string {
		world := NewWorld(7, testConfig())
		a := world.NewClient("a")
		doc, err := a.Create("d", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		s := a.NewSession(ACID)
		s.Append(doc, []byte("y"))
		world.Run(time.Minute)
		got, _ := s.Read(doc)
		return string(got) + world.Now().String()
	}
	if run() != run() {
		t.Fatal("same seed produced different results")
	}
}

func TestSharingAcrossClients(t *testing.T) {
	world := NewWorld(3, testConfig())
	alice := world.NewClient("alice")
	bob := world.NewClient("bob")
	doc, err := alice.Create("shared", []byte("a;"))
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.GrantRead(doc, bob); err != nil {
		t.Fatal(err)
	}
	world.SetACL(alice, doc, &ACL{Entries: []ACLEntry{{PubKey: bob.Signer.Public(), Priv: PrivWrite}}}, 2)
	bs := bob.NewSession(ACID)
	if _, err := bs.Append(doc, []byte("b;")); err != nil {
		t.Fatal(err)
	}
	world.Run(time.Minute)
	got, err := alice.NewSession(ACID).Read(doc)
	if err != nil || string(got) != "a;b;" {
		t.Fatalf("shared read %q err %v", got, err)
	}
}

func TestReplicaPlacementAndLocation(t *testing.T) {
	world := NewWorld(4, testConfig())
	alice := world.NewClient("alice")
	doc, err := alice.Create("doc", []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if err := world.AddReplica(doc, 5); err != nil {
		t.Fatal(err)
	}
	holder, err := world.Locate(6, doc)
	if err != nil || holder < 0 {
		t.Fatalf("locate: %d %v", holder, err)
	}
	if err := world.RemoveReplica(doc, 5); err != nil {
		t.Fatal(err)
	}
}
