package oceanstore

// Micro-benchmarks for the individual mechanisms, complementing the
// per-experiment benches in bench_test.go.

import (
	"math/rand"
	"testing"
	"time"

	"oceanstore/internal/archive"
	"oceanstore/internal/bloom"
	"oceanstore/internal/crypt"
	"oceanstore/internal/epidemic"
	"oceanstore/internal/guid"
	"oceanstore/internal/object"
	"oceanstore/internal/sim"
	"oceanstore/internal/simnet"
	"oceanstore/internal/update"
)

// BenchmarkBloomQuery measures one probabilistic location query on a
// 256-node torus with warm filters.
func BenchmarkBloomQuery(b *testing.B) {
	const side = 16
	adj := make([][]int, side*side)
	at := func(x, y int) int { return ((y+side)%side)*side + (x+side)%side }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			adj[at(x, y)] = []int{at(x+1, y), at(x-1, y), at(x, y+1), at(x, y-1)}
		}
	}
	r := rand.New(rand.NewSource(1))
	loc := bloom.NewLocator(adj, 4, 16384, 4)
	var objs []guid.GUID
	for i := 0; i < 200; i++ {
		g := guid.Random(r)
		loc.Place(r.Intn(len(adj)), g)
		objs = append(objs, g)
	}
	loc.Rebuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.Query(r.Intn(len(adj)), objs[i%len(objs)], 16, r)
	}
}

// BenchmarkBloomRebuild measures full filter propagation, the cost a
// deployment amortises over gossip rounds.
func BenchmarkBloomRebuild(b *testing.B) {
	adj := make([][]int, 64)
	for i := range adj {
		adj[i] = []int{(i + 1) % 64, (i + 63) % 64, (i + 8) % 64, (i + 56) % 64}
	}
	r := rand.New(rand.NewSource(2))
	loc := bloom.NewLocator(adj, 3, 8192, 4)
	for i := 0; i < 100; i++ {
		loc.Place(r.Intn(64), guid.Random(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.Rebuild()
	}
}

// BenchmarkUpdateApply measures guarded-update evaluation and atomic
// application (one append action, one version guard).
func BenchmarkUpdateApply(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	key := crypt.NewBlockKey(r)
	base := object.NewObject(make([]byte, 16<<10), 1024, key)
	ed, _ := object.NewEditor(base, key)
	u := update.NewVersionGuarded(guid.Zero, base.Num, update.BlockOps(ed.Append(make([]byte, 1024))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, out, err := update.Apply(u, base, 0); err != nil || !out.Committed {
			b.Fatal("apply failed")
		}
	}
}

// BenchmarkObjectRead measures logical reconstruction (decrypt + walk)
// of a 64 KiB object in 4 KiB blocks.
func BenchmarkObjectRead(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	key := crypt.NewBlockKey(r)
	v := object.NewObject(make([]byte, 64<<10), 4096, key)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := object.NewView(v, key).Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAntiEntropy measures one epidemic reconciliation moving 50
// tentative updates.
func BenchmarkAntiEntropy(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	key := crypt.NewBlockKey(r)
	v0 := object.NewObject([]byte("base"), 1024, key)
	client := guid.FromData([]byte("c"))
	var updates []*update.Update
	for i := 0; i < 50; i++ {
		ed, _ := object.NewEditor(v0, key)
		u := update.NewUnconditional(guid.Zero, update.BlockOps(ed.Append([]byte{byte(i)})))
		u.ClientID, u.Seq, u.Timestamp = client, uint64(i+1), time.Duration(i)
		updates = append(updates, u)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, c := epidemic.New(v0), epidemic.New(v0)
		for _, u := range updates {
			a.AddTentative(u)
		}
		b.StartTimer()
		if moved := epidemic.AntiEntropy(a, c, 0); moved != 50 {
			b.Fatalf("moved %d", moved)
		}
	}
}

// BenchmarkArchiveEncode measures commit-coupled archival encoding of a
// 64 KiB snapshot (rate-1/2, 32 fragments, Merkle-wrapped).
func BenchmarkArchiveEncode(b *testing.B) {
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(6)).Read(data)
	cfg := archive.Config{DataShards: 16, TotalFragments: 32}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := archive.Encode(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveEncodeLarge is the same pipeline on a 1 MiB
// snapshot — big enough that the erasure and Merkle kernels fork onto
// the worker pool.  Run with `-cpu 1,2,4` to measure the speedup; the
// -cpu 1 number is the serial fallback.
func BenchmarkArchiveEncodeLarge(b *testing.B) {
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(6)).Read(data)
	cfg := archive.Config{DataShards: 16, TotalFragments: 32}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := archive.Encode(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignVerifyUpdate measures client-side signing plus the
// server-side signature check every well-behaved replica performs.
func BenchmarkSignVerifyUpdate(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	signer := crypt.NewSigner(r)
	key := crypt.NewBlockKey(r)
	base := object.NewObject([]byte("x"), 1024, key)
	ed, _ := object.NewEditor(base, key)
	u := update.NewUnconditional(guid.Zero, update.BlockOps(ed.Append(make([]byte, 4096))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Seq = uint64(i)
		u.Sign(signer)
		if !u.VerifySig() {
			b.Fatal("verify failed")
		}
	}
}

// TestStatsSnapshotAllocFree pins the Stats() snapshot path at zero
// steady-state allocations: soak drivers poll it per tick, and a
// fresh pair of ByKind/RetriesByKind maps per poll was a measurable
// share of large-world garbage.  The first call may allocate the
// reusable snapshot maps; every later call must not.
func TestStatsSnapshotAllocFree(t *testing.T) {
	k := sim.NewKernel(9)
	net := simnet.New(k, simnet.Config{BaseLatency: time.Millisecond})
	a := net.AddNode(0, 0)
	bn := net.AddNode(1, 0)
	bn.Handle(func(m simnet.Message) {})
	for i := 0; i < 8; i++ {
		net.Send(a.ID, bn.ID, "ping", nil, 64)
		net.NoteRetry("ping")
	}
	k.Run()
	net.Stats() // warm: builds the reusable maps
	allocs := testing.AllocsPerRun(100, func() {
		s := net.Stats()
		if s.MessagesDelivered != 8 {
			t.Fatalf("delivered = %d", s.MessagesDelivered)
		}
	})
	if allocs != 0 {
		t.Fatalf("Stats() allocates %.1f objects per call, want 0", allocs)
	}
}
