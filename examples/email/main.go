// Email: the paper's motivating groupware application (§3).  A shared
// mailbox is an OceanStore object written concurrently by many senders
// and read by one owner.  The example shows:
//
//   - concurrent deliveries serialised by the primary tier;
//   - an ATOMIC MOVE between folders guarded by a compare-block
//     predicate, so a racing move cannot duplicate or lose a message;
//   - disconnected operation: a partitioned reader keeps working
//     against tentative local state and reconciles on reconnection.
package main

import (
	"fmt"
	"log"
	"time"

	"oceanstore"
	"oceanstore/internal/update"
)

func main() {
	world := oceanstore.NewWorld(7, oceanstore.DefaultConfig())
	owner := world.NewClient("owner")
	sender1 := world.NewClient("sender1")
	sender2 := world.NewClient("sender2")

	// Two folders, each one object.  The owner grants senders write
	// privilege on the inbox only.
	inbox, err := owner.Create("inbox", nil)
	check(err)
	archive, err := owner.Create("archive", nil)
	check(err)
	check(owner.GrantRead(inbox, sender1))
	check(owner.GrantRead(inbox, sender2))
	check(world.SetACL(owner, inbox, &oceanstore.ACL{Entries: []oceanstore.ACLEntry{
		{PubKey: sender1.Signer.Public(), Priv: oceanstore.PrivWrite},
		{PubKey: sender2.Signer.Public(), Priv: oceanstore.PrivWrite},
	}}, 2))

	// Concurrent deliveries: each message is one logical block.
	s1 := sender1.NewSession(oceanstore.MonotonicWrites)
	s2 := sender2.NewSession(oceanstore.MonotonicWrites)
	_, err = s1.Append(inbox, []byte("from carol: lunch?"))
	check(err)
	_, err = s2.Append(inbox, []byte("from dave: report attached"))
	check(err)
	_, err = s1.Append(inbox, []byte("from carol: nevermind"))
	check(err)
	world.Run(time.Minute)

	os := owner.NewSession(oceanstore.ACID)
	// The owner's mail reader refreshes via the callback interface
	// (§4.6) whenever anyone's delivery commits.
	newMail := 0
	os.Watch(inbox, func(update.UpdateID) { newMail++ })
	fmt.Println("inbox after concurrent deliveries:")
	printFolder(os, inbox)

	// ATOMIC MOVE of message 1 to the archive (§3: "some operations,
	// such as message move operations, must occur atomically").  The
	// update's guard checks, on ciphertext, that block 1 still holds the
	// expected message; the actions delete it from the inbox.  The
	// append to the archive is a second update — if the guard aborts,
	// the owner simply does not issue it.
	ed, _, err := os.Editor(inbox)
	check(err)
	expected, pos, err := ed.ExpectedBlock(1, []byte("from dave: report attached"))
	check(err)
	delOp, err := ed.Delete(1)
	check(err)
	move := &update.Update{
		Object: inbox,
		Guards: []update.Guard{{
			Preds: []update.Predicate{
				{Kind: update.PredCompareBlock, Pos: pos, Digest: expected.Digest()},
			},
			Actions: update.BlockOps(delOp),
		}},
	}
	moved := false
	os.OnCommit(func(obj oceanstore.GUID, id update.UpdateID) {
		if obj == inbox {
			moved = true
		}
	})
	os.Submit(move)
	world.Run(time.Minute)
	if moved {
		_, err = os.Append(archive, []byte("from dave: report attached"))
		check(err)
		world.Run(time.Minute)
	}
	fmt.Println("\nafter atomic move of dave's message to the archive:")
	fmt.Println("inbox:")
	printFolder(os, inbox)
	fmt.Println("archive:")
	printFolder(os, archive)

	// A second, racing move of the SAME message must abort: the guard's
	// compare-block now fails.
	ed2, _, err := os.Editor(inbox)
	check(err)
	if _, _, err := ed2.ExpectedBlock(1, nil); err != nil {
		fmt.Println("\nracing second move: message no longer at that position (guard would abort)")
	}

	// DISCONNECTED OPERATION: partition the owner's node, keep reading
	// and writing against tentative state, then reconcile.
	fmt.Println("\n-- disconnected operation --")
	world.Pool.Net.SetPartition(owner.Node, 1) // owner alone in group 1
	offline := owner.NewSession(0)             // optimistic session
	_, err = offline.Append(inbox, []byte("draft written while offline"))
	check(err)
	world.Run(30 * time.Second)
	fmt.Println("while partitioned, committed inbox still shows:")
	printFolder(os, inbox)

	world.Pool.Net.ClearPartitions()
	// Client retransmission re-sends the update after reconnection.
	world.Run(2 * time.Minute)
	fmt.Println("after reconnection and reconciliation:")
	printFolder(os, inbox)
	fmt.Printf("watch callbacks fired for %d commits since registration\n", newMail)
}

// printFolder lists a mailbox's messages (one logical block each).
func printFolder(sess *oceanstore.Session, folder oceanstore.GUID) {
	data, err := sess.Read(folder)
	check(err)
	if len(data) == 0 {
		fmt.Println("  (empty)")
		return
	}
	fmt.Printf("  %q\n", data)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
