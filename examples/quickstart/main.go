// Quickstart: create a persistent object, update it through a session,
// read it back, and look at an old version — the minimal OceanStore
// workflow on the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"oceanstore"
)

func main() {
	// A World is a simulated global deployment on a virtual clock.  The
	// seed makes the run exactly reproducible.
	world := oceanstore.NewWorld(1, oceanstore.DefaultConfig())

	// Clients are the only trusted components: they hold the keys.
	alice := world.NewClient("alice")

	// Objects are named by self-certifying GUIDs derived from the
	// owner's public key and a human-readable name.
	notes, err := alice.Create("notes", []byte("day 1: started the journal\n"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created object %s\n", notes.Short())

	// Sessions relate reads and writes through Bayou-style guarantees;
	// ACID demands primary-committed data.
	sess := alice.NewSession(oceanstore.ACID)

	if _, err := sess.Append(notes, []byte("day 2: appended through the primary tier\n")); err != nil {
		log.Fatal(err)
	}
	// Updates commit through Byzantine agreement on the virtual clock.
	world.Run(30 * time.Second)

	data, err := sess.Read(notes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contents:\n%s", data)

	// Every update made a new version; versions are permanent.
	ring, _ := world.Pool.Ring(notes)
	v := ring.CommittedVersion()
	fmt.Printf("current version: %d (GUID %s)\n", v.Num, v.GUID().Short())
	fmt.Printf("previous version GUID: %s (a permanent hyperlink)\n", v.Prev.Short())
}
