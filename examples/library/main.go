// Library: the paper's digital-library / scientific-data application
// (§3).  A collection of documents is ingested through the file-system
// facade, erasure-coded into deep archival storage as a side effect of
// commitment, and then survives a simulated regional disaster that
// destroys a third of the servers — including every member of the
// object's primary tier.
package main

import (
	"fmt"
	"log"
	"time"

	"oceanstore"
	"oceanstore/internal/object"
	"oceanstore/internal/replica"
	"oceanstore/internal/simnet"
)

func main() {
	cfg := oceanstore.DefaultConfig()
	cfg.Nodes = 96
	world := oceanstore.NewWorld(11, cfg)
	curator := world.NewClient("curator")

	fs, err := curator.NewFS("library")
	check(err)
	check(fs.Mkdir("/physics"))
	world.Run(30 * time.Second)

	// Ingest a small collection.
	docs := map[string]string{
		"/physics/neutrino-run-0042.dat": "event data: 9481 candidate interactions ...",
		"/physics/calibration.txt":       "detector gains per channel ...",
		"/physics/README":                "dataset from the south pole array, July 2026",
	}
	for path, content := range docs {
		check(fs.WriteFile(path, []byte(content)))
		world.Run(30 * time.Second)
	}
	names, err := fs.ReadDir("/physics")
	check(err)
	fmt.Printf("ingested %d documents: %v\n", len(names), names)

	// Each committed write produced archival fragments automatically.
	target, err := fs.Lookup("/physics/neutrino-run-0042.dat")
	check(err)
	ring, _ := world.Pool.Ring(target)
	if len(ring.ArchiveRoots) == 0 {
		log.Fatal("no archival snapshot was produced")
	}
	root := ring.ArchiveRoots[len(ring.ArchiveRoots)-1]
	fmt.Printf("deep archival snapshot %s: %d live fragments across domains\n",
		root.Short(), world.Pool.Arch.LiveFragments(root))

	// DISASTER: a third of all servers go down, among them the whole
	// primary tier of the target object.
	downed := 0
	for i := 0; i < cfg.Nodes/3; i++ {
		world.Pool.Net.Node(simnet.NodeID(i)).SetDown(true)
		downed++
	}
	fmt.Printf("\ndisaster: %d servers destroyed (including the object's primary tier)\n", downed)
	fmt.Printf("live fragments after disaster: %d (need %d)\n",
		world.Pool.Arch.LiveFragments(root), 8)

	// Reconstruct the document from surviving fragments alone.
	var recovered []byte
	world.Pool.Arch.Retrieve(simnet.NodeID(cfg.Nodes-1), root, 4, 10*time.Second,
		func(d []byte, err error, lat time.Duration) {
			if err != nil {
				log.Fatalf("reconstruction failed: %v", err)
			}
			recovered = d
			fmt.Printf("reconstructed %d bytes from fragments in %v (simulated)\n", len(d), lat)
		})
	world.Run(30 * time.Second)

	v, err := replica.ParseSnapshot(recovered)
	check(err)
	key, ok := curator.Keys.Key(target)
	if !ok {
		log.Fatal("curator lost the key")
	}
	plain, err := object.NewView(v, key).Read()
	check(err)
	fmt.Printf("recovered content: %q\n", plain)
	if string(plain) != docs["/physics/neutrino-run-0042.dat"] {
		log.Fatal("recovered content does not match the original")
	}
	fmt.Println("\nnothing short of a global disaster destroys archived data (§4.5)")

	// Background repair restores the redundancy level.
	repaired, _ := world.Pool.Arch.RepairSweep(12, nil)
	fmt.Printf("repair sweep restored %d archives; live fragments now %d\n",
		len(repaired), world.Pool.Arch.LiveFragments(root))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
