// Nomadic data: the paper's promiscuous-caching story (§1.2, §4.7.2).
// A client far from an object's primary tier accesses a cluster of
// related documents.  Introspection watches the access stream, the
// cluster recognizer discovers that the documents belong together, and
// the optimizer floats replicas of the WHOLE cluster onto a server
// next to the client — including documents the client has not touched
// recently (cluster-mate prefetching).  Read latency collapses.
package main

import (
	"fmt"
	"log"
	"time"

	"oceanstore"
	"oceanstore/internal/introspect"
	"oceanstore/internal/simnet"
)

func main() {
	cfg := oceanstore.DefaultConfig()
	cfg.Nodes = 64
	world := oceanstore.NewWorld(13, cfg)
	user := world.NewClient("edge-user")

	// A project: three documents the user always touches together.
	var project []oceanstore.GUID
	for _, name := range []string{"spec.md", "budget.xlsx", "notes.txt"} {
		obj, err := user.Create("project/"+name, []byte("contents of "+name))
		if err != nil {
			log.Fatal(err)
		}
		project = append(project, obj)
	}

	// The edge server: the pool node closest to the user (an airport or
	// café installing a server for better performance, §1.1).
	pool := world.Pool
	edgeServer := simnet.NodeID(4) // skip the 4 primary-tier nodes
	for i := simnet.NodeID(4); i < simnet.NodeID(cfg.Nodes-1); i++ {
		if pool.Net.Latency(user.Node, i) < pool.Net.Latency(user.Node, edgeServer) {
			edgeServer = i
		}
	}

	latencyTo := func(objs []oceanstore.GUID) time.Duration {
		var sum time.Duration
		for _, obj := range objs {
			ring, _ := pool.Ring(obj)
			best := pool.Net.Latency(user.Node, 0) // primary fallback
			for _, sec := range ring.Secondaries() {
				if l := pool.Net.Latency(user.Node, sec.Node); l < best {
					best = l
				}
			}
			sum += best
		}
		return sum / time.Duration(len(objs))
	}
	fmt.Printf("mean read latency before caching: %v\n", latencyTo(project))

	// Introspection observes the user's accesses (Figure 7's observe
	// phase): sessions of project work separated by unrelated activity.
	recognizer := introspect.NewClusterRecognizer(4)
	sess := user.NewSession(oceanstore.MonotonicReads)
	for day := 0; day < 10; day++ {
		for _, obj := range project {
			if _, err := sess.Read(obj); err != nil {
				log.Fatal(err)
			}
			recognizer.Access(obj)
		}
		world.Run(30 * time.Second)
	}

	// Optimize (Figure 7's optimize phase): any clustered object the
	// user touches drags its cluster mates to the edge server.
	clusters := recognizer.Clusters(5)
	fmt.Printf("clusters discovered: %d (first has %d members)\n", len(clusters), len(clusters[0]))
	touched := project[0]
	toFloat := append(recognizer.PrefetchCandidates(touched, 5), touched)
	for _, obj := range toFloat {
		if err := world.AddReplica(obj, int(edgeServer)); err != nil {
			log.Fatal(err)
		}
	}
	world.Run(time.Minute)
	fmt.Printf("floated %d replicas (cluster-mate prefetch) onto edge server %d\n",
		len(toFloat), edgeServer)
	fmt.Printf("mean read latency after caching:  %v\n", latencyTo(project))

	// The data is truly nomadic: reads still satisfy session guarantees
	// wherever the replicas float.
	for _, obj := range project {
		if _, err := sess.Read(obj); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("all reads satisfied through the floated replicas")
}
