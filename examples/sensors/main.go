// Sensors: the paper's streaming application (§2): "OceanStore provides
// an ideal platform for new streaming applications, such as sensor data
// aggregation and dissemination."  A fleet of sensors appends readings
// to a feed object; analysts across the network subscribe by holding
// floating replicas fed through the dissemination tree; an introspective
// observer aggregates per-node statistics up a hierarchy.
package main

import (
	"fmt"
	"log"
	"time"

	"oceanstore"
	"oceanstore/internal/introspect"
)

func main() {
	cfg := oceanstore.DefaultConfig()
	cfg.Nodes = 64
	world := oceanstore.NewWorld(5, cfg)

	station := world.NewClient("station") // the sensor gateway
	analyst := world.NewClient("analyst")

	feed, err := station.Create("sensor-feed", nil)
	check(err)
	check(station.GrantRead(feed, analyst))

	// Analysts near the data: floating replicas on their side of the
	// network, fed by the dissemination tree.
	for _, n := range []int{40, 41, 42} {
		check(world.AddReplica(feed, n))
	}

	// Introspective observation (Fig 8): every ingest event runs through
	// compiled DSL handlers; summaries aggregate up a 3-node hierarchy.
	obs := introspect.NewObserver()
	obs.AddHandler("readings", introspect.MustCompile("(count (= name reading))"))
	obs.AddHandler("mean-temp", introspect.MustCompile("(ewma temp 0.2)"))
	obs.AddHandler("max-temp", introspect.MustCompile("(max temp)"))
	obs.AddHandler("alerts", introspect.MustCompile("(count (> temp 30))"))

	sess := station.NewSession(oceanstore.MonotonicWrites)
	temps := []float64{18.5, 19.1, 21.7, 24.0, 31.2, 30.5, 22.4, 19.9}
	for i, temp := range temps {
		line := fmt.Sprintf("t=%02d temp=%.1fC\n", i, temp)
		if _, err := sess.Append(feed, []byte(line)); err != nil {
			log.Fatal(err)
		}
		obs.Observe(introspect.Event{Name: "reading", Fields: map[string]float64{"temp": temp}})
		world.Run(20 * time.Second) // streaming: one commit per tick
	}

	// The analyst reads the feed from a nearby replica.
	as := analyst.NewSession(oceanstore.MonotonicReads)
	data, err := as.Read(feed)
	check(err)
	fmt.Printf("analyst's view of the feed (%d bytes):\n%s\n", len(data), data)

	// Local summaries forward up the introspection hierarchy.
	h := introspect.NewHierarchy([]int{0, 0, 0}) // two leaves under a root
	h.SetLocal(1, obs.DB())
	global := h.GlobalView()
	fmt.Println("introspective aggregate at the hierarchy root:")
	fmt.Printf("  readings   = %.0f\n", global["readings"])
	fmt.Printf("  mean temp  = %.2fC (ewma)\n", global["mean-temp"])
	fmt.Printf("  max temp   = %.1fC\n", global["max-temp"])
	fmt.Printf("  >30C alerts= %.0f\n", global["alerts"])

	// Archival durability came along for free.
	ring, _ := world.Pool.Ring(feed)
	fmt.Printf("\narchival snapshots of the feed: %d\n", len(ring.ArchiveRoots))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
