module oceanstore

go 1.22
